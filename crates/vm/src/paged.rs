//! The resident-set manager.

use std::collections::{HashMap, HashSet};

use rmp_blockdev::PagingDevice;
use rmp_types::{Page, PageId, Result};

use crate::policy::{Replacement, ReplacementState};
use crate::stats::FaultStats;

/// Virtual-memory configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Resident frames available to the application — the "main memory"
    /// of the simulated workstation (a 32 MB DEC-Alpha holds 4096 8 KB
    /// frames, minus what the OS keeps).
    pub resident_frames: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl VmConfig {
    /// Configuration with `resident_frames` frames and LRU replacement.
    pub fn with_frames(resident_frames: usize) -> Self {
        VmConfig {
            resident_frames,
            replacement: Replacement::Lru,
        }
    }
}

/// A demand-paged memory: a bounded resident set in front of a
/// [`PagingDevice`].
///
/// Applications address pages by [`PageId`] and access their bytes through
/// closures; faults and evictions translate into `page_in`/`page_out`
/// calls on the device, reproducing the kernel-to-pager request stream of
/// the paper's testbed.
///
/// # Examples
///
/// ```
/// use rmp_blockdev::RamDisk;
/// use rmp_vm::{PagedMemory, VmConfig};
/// use rmp_types::PageId;
///
/// let mut vm = PagedMemory::new(RamDisk::unbounded(), VmConfig::with_frames(2));
/// vm.write(PageId(0), |p| p.as_mut()[0] = 42).unwrap();
/// // Touch two more pages to force page 0 out of the resident set...
/// vm.write(PageId(1), |p| p.as_mut()[0] = 1).unwrap();
/// vm.write(PageId(2), |p| p.as_mut()[0] = 2).unwrap();
/// // ...and fault it back in.
/// let v = vm.read(PageId(0), |p| p.as_ref()[0]).unwrap();
/// assert_eq!(v, 42);
/// assert!(vm.stats().pageouts >= 1);
/// ```
pub struct PagedMemory<D> {
    device: D,
    frames: Vec<Page>,
    frame_of: HashMap<PageId, usize>,
    page_of: Vec<Option<PageId>>,
    dirty: Vec<bool>,
    free_frames: Vec<usize>,
    replacement: ReplacementState,
    /// Pages that have a current copy on the device.
    on_device: HashSet<PageId>,
    stats: FaultStats,
}

impl<D: PagingDevice> PagedMemory<D> {
    /// Creates a paged memory over `device`.
    ///
    /// # Panics
    ///
    /// Panics when `config.resident_frames` is zero — at least one frame
    /// is needed to make progress.
    pub fn new(device: D, config: VmConfig) -> Self {
        assert!(config.resident_frames > 0, "need at least one frame");
        let n = config.resident_frames;
        PagedMemory {
            device,
            frames: (0..n).map(|_| Page::zeroed()).collect(),
            frame_of: HashMap::new(),
            page_of: vec![None; n],
            dirty: vec![false; n],
            free_frames: (0..n).rev().collect(),
            replacement: ReplacementState::new(config.replacement, n),
            on_device: HashSet::new(),
            stats: FaultStats::default(),
        }
    }

    /// Reads page `id` through `f`.
    ///
    /// A never-written page reads as zeros (demand-zero fill).
    ///
    /// # Errors
    ///
    /// Propagates device failures from faults and evictions.
    pub fn read<R>(&mut self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let frame = self.fault_in(id)?;
        self.stats.accesses += 1;
        self.replacement.on_access(frame);
        Ok(f(&self.frames[frame]))
    }

    /// Mutates page `id` through `f`, marking it dirty.
    ///
    /// # Errors
    ///
    /// Propagates device failures from faults and evictions.
    pub fn write<R>(&mut self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let frame = self.fault_in(id)?;
        self.stats.accesses += 1;
        self.replacement.on_access(frame);
        self.dirty[frame] = true;
        Ok(f(&mut self.frames[frame]))
    }

    /// Ensures `id` is resident, returning its frame index.
    fn fault_in(&mut self, id: PageId) -> Result<usize> {
        if let Some(&frame) = self.frame_of.get(&id) {
            self.stats.hits += 1;
            return Ok(frame);
        }
        let frame = match self.free_frames.pop() {
            Some(f) => f,
            None => self.evict()?,
        };
        if self.on_device.contains(&id) {
            self.frames[frame] = self.device.page_in(id)?;
            self.stats.pageins += 1;
        } else {
            self.frames[frame].clear();
            self.stats.zero_fills += 1;
        }
        self.frame_of.insert(id, frame);
        self.page_of[frame] = Some(id);
        self.dirty[frame] = false;
        self.replacement.on_load(frame);
        Ok(frame)
    }

    /// Evicts one frame, writing it back if dirty, and returns it.
    fn evict(&mut self) -> Result<usize> {
        let frame = self.replacement.choose_victim();
        let victim = self.page_of[frame].expect("occupied frame");
        if self.dirty[frame] {
            self.device.page_out(victim, &self.frames[frame])?;
            self.on_device.insert(victim);
            self.stats.pageouts += 1;
        } else {
            self.stats.clean_evictions += 1;
        }
        self.frame_of.remove(&victim);
        self.page_of[frame] = None;
        Ok(frame)
    }

    /// Writes every dirty resident page to the device (orderly shutdown or
    /// checkpoint) and flushes the device.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    pub fn sync(&mut self) -> Result<()> {
        for frame in 0..self.frames.len() {
            if self.dirty[frame] {
                let id = self.page_of[frame].expect("dirty frame is occupied");
                self.device.page_out(id, &self.frames[frame])?;
                self.on_device.insert(id);
                self.dirty[frame] = false;
                self.stats.pageouts += 1;
            }
        }
        self.device.flush()
    }

    /// Drops page `id` entirely: from the resident set and the device
    /// (swap-space release when data dies).
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    pub fn discard(&mut self, id: PageId) -> Result<()> {
        if let Some(frame) = self.frame_of.remove(&id) {
            self.page_of[frame] = None;
            self.dirty[frame] = false;
            self.free_frames.push(frame);
        }
        if self.on_device.remove(&id) {
            self.device.free(id)?;
        }
        Ok(())
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.frame_of.len()
    }

    /// Returns `true` when `id` is resident.
    pub fn is_resident(&self, id: PageId) -> bool {
        self.frame_of.contains_key(&id)
    }

    /// Fault statistics accumulated so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Reference to the backing device.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Mutable reference to the backing device.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// Consumes the memory, returning the backing device.
    pub fn into_device(self) -> D {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmp_blockdev::RamDisk;

    fn vm(frames: usize) -> PagedMemory<RamDisk> {
        PagedMemory::new(RamDisk::unbounded(), VmConfig::with_frames(frames))
    }

    #[test]
    fn zero_fill_on_first_touch() {
        let mut m = vm(2);
        let first = m.read(PageId(0), |p| p.as_ref()[123]).expect("read");
        assert_eq!(first, 0);
        assert_eq!(m.stats().zero_fills, 1);
        assert_eq!(m.stats().pageins, 0);
    }

    #[test]
    fn data_survives_eviction() {
        let mut m = vm(2);
        m.write(PageId(0), |p| p.as_mut()[0] = 10).expect("write");
        m.write(PageId(1), |p| p.as_mut()[0] = 11).expect("write");
        m.write(PageId(2), |p| p.as_mut()[0] = 12).expect("write");
        assert_eq!(m.resident(), 2);
        for (id, val) in [(0u64, 10u8), (1, 11), (2, 12)] {
            let got = m.read(PageId(id), |p| p.as_ref()[0]).expect("read");
            assert_eq!(got, val, "page {id}");
        }
        assert!(m.stats().pageouts >= 1);
        assert!(m.stats().pageins >= 1);
    }

    #[test]
    fn clean_pages_evict_without_io() {
        let mut m = vm(1);
        m.write(PageId(0), |p| p.as_mut()[0] = 1).expect("write");
        // Evict 0 (dirty -> pageout), load 1 clean.
        m.read(PageId(1), |_| ()).expect("read");
        assert_eq!(m.stats().pageouts, 1);
        // Evict 1 (clean -> dropped), reload 0.
        m.read(PageId(0), |_| ()).expect("read");
        assert_eq!(m.stats().pageouts, 1, "no write-back for clean page");
        assert_eq!(m.stats().clean_evictions, 1);
    }

    #[test]
    fn rewritten_page_is_paged_out_again() {
        let mut m = vm(1);
        m.write(PageId(0), |p| p.as_mut()[0] = 1).expect("write");
        m.read(PageId(1), |_| ()).expect("evicts 0 dirty");
        m.write(PageId(0), |p| p.as_mut()[0] = 2)
            .expect("faults 0 back, dirties");
        m.read(PageId(1), |_| ()).expect("evicts 0 dirty again");
        assert_eq!(m.stats().pageouts, 2);
        let v = m.read(PageId(0), |p| p.as_ref()[0]).expect("read");
        assert_eq!(v, 2);
    }

    #[test]
    fn sync_writes_dirty_residents() {
        let mut m = vm(4);
        for i in 0..3u64 {
            m.write(PageId(i), |p| p.as_mut()[0] = i as u8)
                .expect("write");
        }
        assert_eq!(m.device().stats().pageouts, 0);
        m.sync().expect("sync");
        assert_eq!(m.device().stats().pageouts, 3);
        // Second sync writes nothing (all clean now).
        m.sync().expect("sync");
        assert_eq!(m.device().stats().pageouts, 3);
    }

    #[test]
    fn discard_releases_everywhere() {
        let mut m = vm(1);
        m.write(PageId(0), |p| p.as_mut()[0] = 1).expect("write");
        m.read(PageId(1), |_| ()).expect("evict 0 to device");
        assert!(m.device().contains(PageId(0)));
        m.discard(PageId(0)).expect("discard");
        assert!(!m.device().contains(PageId(0)));
        // Re-reading after discard is a fresh zero page.
        let v = m.read(PageId(0), |p| p.as_ref()[0]).expect("read");
        assert_eq!(v, 0);
    }

    #[test]
    fn hit_ratio_reflects_locality() {
        let mut m = vm(4);
        for _ in 0..100 {
            m.read(PageId(0), |_| ()).expect("read");
        }
        assert!(m.stats().hit_ratio() > 0.98);
    }

    #[test]
    fn working_set_larger_than_memory_thrashes() {
        let mut m = vm(2);
        // Cyclic access over 4 pages with LRU over 2 frames: every access
        // past the warm-up faults.
        for round in 0..5u64 {
            for id in 0..4u64 {
                m.write(PageId(id), |p| p.as_mut()[0] = round as u8)
                    .expect("write");
            }
        }
        let s = m.stats();
        assert!(s.faults() >= 16, "cyclic overcommit must thrash, got {s:?}");
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = vm(0);
    }
}
