//! Typed out-of-core arrays over a paged memory.

use rmp_blockdev::PagingDevice;
use rmp_types::{PageId, Result, PAGE_SIZE};

use crate::paged::PagedMemory;

/// A fixed-size element that can live inside a page.
///
/// Implemented for the numeric types the paper's applications use
/// (matrices of `f64`, sort keys of `u64`, image bytes of `u8`, ...).
pub trait Element: Copy + Default {
    /// Encoded size in bytes; must divide [`PAGE_SIZE`].
    const SIZE: usize;

    /// Writes the element into `buf` (exactly `SIZE` bytes).
    fn store(self, buf: &mut [u8]);

    /// Reads an element from `buf` (exactly `SIZE` bytes).
    fn load(buf: &[u8]) -> Self;
}

macro_rules! impl_element {
    ($t:ty, $n:expr) => {
        impl Element for $t {
            const SIZE: usize = $n;

            fn store(self, buf: &mut [u8]) {
                buf.copy_from_slice(&self.to_le_bytes());
            }

            fn load(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf.try_into().expect("element size"))
            }
        }
    };
}

impl_element!(f64, 8);
impl_element!(f32, 4);
impl_element!(u64, 8);
impl_element!(i64, 8);
impl_element!(u32, 4);
impl_element!(i32, 4);
impl_element!(u8, 1);

/// A typed array paged over a [`PagingDevice`].
///
/// Elements are packed densely into pages starting at a base [`PageId`],
/// so several arrays can share one [`PagedMemory`] at disjoint base
/// offsets — the way GAUSS keeps its matrix and FILTER its two image
/// planes in a single simulated address space.
///
/// # Examples
///
/// ```
/// use rmp_blockdev::RamDisk;
/// use rmp_vm::{PagedArray, PagedMemory, VmConfig};
///
/// let mut vm = PagedMemory::new(RamDisk::unbounded(), VmConfig::with_frames(4));
/// let arr = PagedArray::<f64>::new(0, 10_000);
/// arr.set(&mut vm, 1234, 2.5).unwrap();
/// assert_eq!(arr.get(&mut vm, 1234).unwrap(), 2.5);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PagedArray<T> {
    base_page: u64,
    len: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Element> PagedArray<T> {
    /// Elements that fit in one page.
    pub const PER_PAGE: usize = PAGE_SIZE / T::SIZE;

    /// Creates an array of `len` elements starting at page `base_page`.
    pub fn new(base_page: u64, len: usize) -> Self {
        debug_assert!(
            PAGE_SIZE.is_multiple_of(T::SIZE),
            "element size divides page"
        );
        PagedArray {
            base_page,
            len,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages this array spans.
    pub fn pages(&self) -> u64 {
        self.len.div_ceil(Self::PER_PAGE) as u64
    }

    /// First page id past this array — a safe `base_page` for the next
    /// array sharing the same memory.
    pub fn end_page(&self) -> u64 {
        self.base_page + self.pages()
    }

    fn locate(&self, index: usize) -> (PageId, usize) {
        assert!(index < self.len, "index {index} out of bounds {}", self.len);
        let page = self.base_page + (index / Self::PER_PAGE) as u64;
        let offset = (index % Self::PER_PAGE) * T::SIZE;
        (PageId(page), offset)
    }

    /// Reads element `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    ///
    /// # Errors
    ///
    /// Propagates paging failures.
    pub fn get<D: PagingDevice>(&self, vm: &mut PagedMemory<D>, index: usize) -> Result<T> {
        let (page, off) = self.locate(index);
        vm.read(page, |p| T::load(&p.as_ref()[off..off + T::SIZE]))
    }

    /// Writes element `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    ///
    /// # Errors
    ///
    /// Propagates paging failures.
    pub fn set<D: PagingDevice>(
        &self,
        vm: &mut PagedMemory<D>,
        index: usize,
        value: T,
    ) -> Result<()> {
        let (page, off) = self.locate(index);
        vm.write(page, |p| value.store(&mut p.as_mut()[off..off + T::SIZE]))
    }

    /// Applies `f` to element `index` in place and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    ///
    /// # Errors
    ///
    /// Propagates paging failures.
    pub fn update<D: PagingDevice>(
        &self,
        vm: &mut PagedMemory<D>,
        index: usize,
        f: impl FnOnce(T) -> T,
    ) -> Result<T> {
        let (page, off) = self.locate(index);
        vm.write(page, |p| {
            let cur = T::load(&p.as_ref()[off..off + T::SIZE]);
            let new = f(cur);
            new.store(&mut p.as_mut()[off..off + T::SIZE]);
            new
        })
    }

    /// Swaps elements `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    ///
    /// # Errors
    ///
    /// Propagates paging failures.
    pub fn swap<D: PagingDevice>(&self, vm: &mut PagedMemory<D>, a: usize, b: usize) -> Result<()> {
        if a == b {
            return Ok(());
        }
        let va = self.get(vm, a)?;
        let vb = self.get(vm, b)?;
        self.set(vm, a, vb)?;
        self.set(vm, b, va)
    }

    /// Fills the array from an iterator (stopping at `len`).
    ///
    /// # Errors
    ///
    /// Propagates paging failures.
    pub fn fill_from<D: PagingDevice, I: IntoIterator<Item = T>>(
        &self,
        vm: &mut PagedMemory<D>,
        values: I,
    ) -> Result<()> {
        for (i, v) in values.into_iter().take(self.len).enumerate() {
            self.set(vm, i, v)?;
        }
        Ok(())
    }

    /// Collects the whole array into a `Vec` (tests and verification).
    ///
    /// # Errors
    ///
    /// Propagates paging failures.
    pub fn to_vec<D: PagingDevice>(&self, vm: &mut PagedMemory<D>) -> Result<Vec<T>> {
        (0..self.len).map(|i| self.get(vm, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paged::VmConfig;
    use rmp_blockdev::RamDisk;

    fn vm(frames: usize) -> PagedMemory<RamDisk> {
        PagedMemory::new(RamDisk::unbounded(), VmConfig::with_frames(frames))
    }

    #[test]
    fn elements_per_page() {
        assert_eq!(PagedArray::<f64>::PER_PAGE, 1024);
        assert_eq!(PagedArray::<u8>::PER_PAGE, 8192);
        assert_eq!(PagedArray::<u32>::PER_PAGE, 2048);
    }

    #[test]
    fn set_get_across_pages() {
        let mut m = vm(2);
        let arr = PagedArray::<f64>::new(0, 5000);
        assert_eq!(arr.pages(), 5);
        for i in (0..5000).step_by(37) {
            arr.set(&mut m, i, i as f64 * 0.5).expect("set");
        }
        for i in (0..5000).step_by(37) {
            assert_eq!(arr.get(&mut m, i).expect("get"), i as f64 * 0.5);
        }
    }

    #[test]
    fn arrays_at_disjoint_bases_do_not_alias() {
        let mut m = vm(4);
        let a = PagedArray::<u64>::new(0, 2048);
        let b = PagedArray::<u64>::new(a.end_page(), 2048);
        a.set(&mut m, 0, 111).expect("set");
        b.set(&mut m, 0, 222).expect("set");
        assert_eq!(a.get(&mut m, 0).expect("get"), 111);
        assert_eq!(b.get(&mut m, 0).expect("get"), 222);
    }

    #[test]
    fn update_and_swap() {
        let mut m = vm(2);
        let arr = PagedArray::<u64>::new(0, 100);
        arr.set(&mut m, 3, 10).expect("set");
        let new = arr.update(&mut m, 3, |v| v * 7).expect("update");
        assert_eq!(new, 70);
        arr.set(&mut m, 90, 5).expect("set");
        arr.swap(&mut m, 3, 90).expect("swap");
        assert_eq!(arr.get(&mut m, 3).expect("get"), 5);
        assert_eq!(arr.get(&mut m, 90).expect("get"), 70);
        arr.swap(&mut m, 3, 3).expect("self swap is a no-op");
        assert_eq!(arr.get(&mut m, 3).expect("get"), 5);
    }

    #[test]
    fn fill_and_collect_round_trip() {
        let mut m = vm(3);
        let arr = PagedArray::<u32>::new(0, 3000);
        arr.fill_from(&mut m, (0..3000).map(|i| i * 2))
            .expect("fill");
        let v = arr.to_vec(&mut m).expect("collect");
        assert_eq!(v.len(), 3000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == (i as u32) * 2));
    }

    #[test]
    fn untouched_elements_default_to_zero() {
        let mut m = vm(1);
        let arr = PagedArray::<f64>::new(0, 10);
        assert_eq!(arr.get(&mut m, 9).expect("get"), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut m = vm(1);
        let arr = PagedArray::<f64>::new(0, 10);
        let _ = arr.get(&mut m, 10);
    }
}
