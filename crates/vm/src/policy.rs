//! Page-replacement policies.

/// Which replacement policy the resident set uses.
///
/// DEC OSF/1 used a FIFO-with-second-chance global policy; we provide the
/// three classics so the ablation benches can show how the choice shifts
/// the pagein/pageout mix the pager sees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Replacement {
    /// Evict the least-recently-used frame.
    Lru,
    /// Evict the first-loaded frame.
    Fifo,
    /// Second-chance clock.
    Clock,
}

/// Internal replacement state over `n` frames.
#[derive(Debug)]
pub(crate) struct ReplacementState {
    policy: Replacement,
    /// LRU: last-access stamp per frame. FIFO: load stamp per frame.
    stamp: Vec<u64>,
    /// Clock reference bits.
    referenced: Vec<bool>,
    hand: usize,
    tick: u64,
}

impl ReplacementState {
    pub(crate) fn new(policy: Replacement, frames: usize) -> Self {
        ReplacementState {
            policy,
            stamp: vec![0; frames],
            referenced: vec![false; frames],
            hand: 0,
            tick: 0,
        }
    }

    /// Records that `frame` was accessed (hit).
    pub(crate) fn on_access(&mut self, frame: usize) {
        self.tick += 1;
        match self.policy {
            Replacement::Lru => self.stamp[frame] = self.tick,
            Replacement::Fifo => {}
            Replacement::Clock => self.referenced[frame] = true,
        }
    }

    /// Records that `frame` was (re)loaded with a new page.
    pub(crate) fn on_load(&mut self, frame: usize) {
        self.tick += 1;
        self.stamp[frame] = self.tick;
        self.referenced[frame] = true;
    }

    /// Picks the victim frame among the fully-occupied resident set.
    pub(crate) fn choose_victim(&mut self) -> usize {
        match self.policy {
            Replacement::Lru | Replacement::Fifo => self
                .stamp
                .iter()
                .enumerate()
                .min_by_key(|(_, &s)| s)
                .map(|(i, _)| i)
                .expect("at least one frame"),
            Replacement::Clock => loop {
                let i = self.hand;
                self.hand = (self.hand + 1) % self.referenced.len();
                if self.referenced[i] {
                    self.referenced[i] = false;
                } else {
                    return i;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut st = ReplacementState::new(Replacement::Lru, 3);
        for f in 0..3 {
            st.on_load(f);
        }
        st.on_access(0);
        st.on_access(2);
        assert_eq!(st.choose_victim(), 1);
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut st = ReplacementState::new(Replacement::Fifo, 3);
        for f in 0..3 {
            st.on_load(f);
        }
        st.on_access(0);
        st.on_access(0);
        assert_eq!(st.choose_victim(), 0, "first loaded leaves first");
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut st = ReplacementState::new(Replacement::Clock, 3);
        for f in 0..3 {
            st.on_load(f);
        }
        // All referenced: the hand clears 0,1,2 then returns 0.
        assert_eq!(st.choose_victim(), 0);
        // Now 1 and 2 are unreferenced; accessing 1 saves it.
        st.on_access(1);
        assert_eq!(st.choose_victim(), 2);
    }
}
