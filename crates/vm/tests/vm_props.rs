//! Property tests: a paged memory must be indistinguishable from flat
//! memory, for any access pattern and any (positive) resident-set size.

use proptest::prelude::*;
use rmp_blockdev::{PagingDevice, RamDisk};
use rmp_types::PageId;
use rmp_vm::{PagedArray, PagedMemory, Replacement, VmConfig};
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interleavings of reads, writes and discards over a
    /// paged memory agree byte-for-byte with a reference map, for every
    /// replacement policy and resident-set size.
    #[test]
    fn paged_memory_matches_flat_memory(
        frames in 1usize..6,
        policy_idx in 0usize..3,
        ops in prop::collection::vec((0u8..3, 0u64..12, any::<u8>(), 0usize..8192), 1..120),
    ) {
        let policy = [Replacement::Lru, Replacement::Fifo, Replacement::Clock][policy_idx];
        let mut vm = PagedMemory::new(
            RamDisk::unbounded(),
            VmConfig {
                resident_frames: frames,
                replacement: policy,
            },
        );
        let mut reference: HashMap<(u64, usize), u8> = HashMap::new();
        for (op, page, byte, offset) in ops {
            match op {
                0 => {
                    vm.write(PageId(page), |p| p.as_mut()[offset] = byte).unwrap();
                    reference.insert((page, offset), byte);
                }
                1 => {
                    let got = vm.read(PageId(page), |p| p.as_ref()[offset]).unwrap();
                    let expect = reference.get(&(page, offset)).copied().unwrap_or(0);
                    prop_assert_eq!(got, expect, "page {} offset {}", page, offset);
                }
                _ => {
                    vm.discard(PageId(page)).unwrap();
                    reference.retain(|&(p, _), _| p != page);
                }
            }
            prop_assert!(vm.resident() <= frames);
        }
        // Final sweep: every tracked byte reads back.
        for (&(page, offset), &expect) in &reference {
            let got = vm.read(PageId(page), |p| p.as_ref()[offset]).unwrap();
            prop_assert_eq!(got, expect);
        }
    }

    /// A typed array over paged memory behaves like a `Vec`, including
    /// across evictions.
    #[test]
    fn paged_array_matches_vec(
        frames in 1usize..4,
        len in 1usize..5000,
        writes in prop::collection::vec((any::<prop::sample::Index>(), any::<u64>()), 1..60),
    ) {
        let mut vm = PagedMemory::new(RamDisk::unbounded(), VmConfig::with_frames(frames));
        let arr = PagedArray::<u64>::new(0, len);
        let mut reference = vec![0u64; len];
        for (idx, value) in writes {
            let i = idx.index(len);
            arr.set(&mut vm, i, value).unwrap();
            reference[i] = value;
        }
        let collected = arr.to_vec(&mut vm).unwrap();
        prop_assert_eq!(collected, reference);
    }

    /// Fault accounting is conserved: every access is a hit or a fault,
    /// and pageouts never exceed faults (only evicted-dirty pages write).
    #[test]
    fn fault_accounting_is_conserved(
        frames in 1usize..5,
        ops in prop::collection::vec((any::<bool>(), 0u64..10), 1..100),
    ) {
        let mut vm = PagedMemory::new(RamDisk::unbounded(), VmConfig::with_frames(frames));
        for (write, page) in ops {
            if write {
                vm.write(PageId(page), |p| p.as_mut()[0] = 1).unwrap();
            } else {
                vm.read(PageId(page), |_| ()).unwrap();
            }
        }
        let s = vm.stats();
        prop_assert_eq!(s.accesses, s.hits + s.pageins + s.zero_fills);
        prop_assert!(s.pageouts <= s.pageins + s.zero_fills);
        // Device agreement: what the VM counts is what the device saw.
        prop_assert_eq!(vm.device().stats().pageins, s.pageins);
        prop_assert_eq!(vm.device().stats().pageouts, s.pageouts);
    }
}

#[test]
fn write_behind_device_works_under_a_real_access_pattern() {
    use rmp_blockdev::WriteBehind;
    let device = WriteBehind::new(RamDisk::unbounded(), 128);
    let mut vm = PagedMemory::new(device, VmConfig::with_frames(4));
    // A write-heavy pattern: fill 64 pages through 4 frames, so evictions
    // stream through the asynchronous pageout queue.
    for i in 0..64u64 {
        vm.write(PageId(i), |p| p.as_mut()[0] = i as u8).unwrap();
    }
    for i in 0..64u64 {
        let v = vm.read(PageId(i), |p| p.as_ref()[0]).unwrap();
        assert_eq!(v, i as u8);
    }
    vm.sync().unwrap();
    assert_eq!(vm.device().pending(), 0, "sync drained the queue");
}
