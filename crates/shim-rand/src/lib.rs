//! Offline stand-in for the `rand` crate.
//!
//! Implements the deterministic-seeded subset the simulators and tests
//! use: `StdRng::seed_from_u64`, `gen_range` over integer and float
//! ranges, and `gen_bool`. The generator is splitmix64-seeded
//! xoshiro-style; it is *not* cryptographically secure, which matches
//! how the workspace uses it (reproducible simulation and test inputs).

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 top bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (splitmix64-scrambled xorshift64*).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Splitmix64 step so that small/sequential seeds diverge.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna): passes BigCrush small-scale batteries,
            // plenty for simulation workloads.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// A range argument accepted by [`Rng::gen_range`]; generic over the
/// output type so the expected result drives literal inference, as in
/// upstream rand (`let id: u64 = rng.gen_range(0..64)`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&v));
            let i = rng.gen_range(3u32..17);
            assert!((3..17).contains(&i));
            let n = rng.gen_range(1u8..=255);
            assert!(n >= 1);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (1_500..3_500).contains(&hits),
            "p=0.25 gave {hits}/10000 hits"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4, "nearby seeds produced {same}/64 collisions");
    }
}
