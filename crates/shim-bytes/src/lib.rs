//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the small subset of the `bytes` 1.x API the workspace uses: cheaply
//! cloneable immutable buffers ([`Bytes`]), growable write buffers
//! ([`BytesMut`]), and the cursor traits [`Buf`] / [`BufMut`] with the
//! little-endian accessors the wire codec needs.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `src` into a fresh buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view sharing the same storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer for building frames.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            data: vec![0u8; len],
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { data: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out of the cursor, advancing it.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Advances the cursor by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Splits off the next `n` bytes as an owned [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let mut v = vec![0u8; n];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        self.start += n;
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "buffer underflow");
        let out = self.slice(..n);
        self.start += n;
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u16_le(0x524D);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        let mut r = w.freeze();
        assert_eq!(r.get_u16_le(), 0x524D);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5, "parent unchanged");
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let head = b.copy_to_bytes(3);
        assert_eq!(&head[..], &[1, 2, 3]);
        assert_eq!(b.remaining(), 1);
    }

    #[test]
    fn slice_buf_impl_advances() {
        let data = [9u8, 8, 7];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.get_u8(), 9);
        assert_eq!(cursor.remaining(), 2);
        cursor.advance(1);
        assert_eq!(cursor.get_u8(), 7);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        let _ = b.get_u32_le();
    }
}
