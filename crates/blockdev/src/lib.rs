//! Paging-device abstraction and local backing stores.
//!
//! The DEC OSF/1 kernel sees the paper's pager as an ordinary block device
//! that services pagein/pageout requests. This crate defines that contract
//! as the [`PagingDevice`] trait and provides the local backends:
//!
//! * [`RamDisk`] — an in-memory store used by tests and as the substrate of
//!   simulated servers.
//! * [`FileDisk`] — a real file-backed swap "partition", the local-disk
//!   path the paper's RMP falls back to ("RMP is also capable of forwarding
//!   the requests to the local disk using either a specified partition or a
//!   file").
//! * [`ModeledDisk`] — a wrapper that charges every request to a virtual
//!   clock using a seek/rotation/transfer model of the DEC RZ55, so
//!   functional runs can report 1996-scale disk time without sleeping.
//! * [`WriteBehind`] — asynchronous pageout queueing in front of any
//!   device, mirroring the OSF/1 paging daemon's non-blocking writes.
//!
//! The remote memory pager in `rmp-core` implements the same trait, which
//! is what lets the virtual-memory layer in `rmp-vm` swap transparently
//! between disk and remote memory — exactly the transparency the paper
//! achieves by sitting under the kernel's block-device interface.

pub mod filedisk;
pub mod modeled;
pub mod ramdisk;
pub mod traits;
pub mod writebehind;

pub use filedisk::FileDisk;
pub use modeled::{DiskModel, ModeledDisk};
pub use ramdisk::RamDisk;
pub use traits::PagingDevice;
pub use writebehind::WriteBehind;
