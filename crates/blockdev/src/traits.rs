//! The paging-device contract.

use rmp_types::{Page, PageId, Result, TransferStats};

/// A device that can absorb pageouts and service pageins — the role the
/// DEC OSF/1 kernel assigns to its swap block device.
///
/// Implementors include the local backends in this crate and the remote
/// memory pager itself (`rmp_core::Pager`), which is the whole point of the
/// paper: the kernel "just performs ordinary paging activities using a
/// block device" while the driver forwards requests to remote memory.
pub trait PagingDevice: Send {
    /// Stores `page` under `id`, overwriting any previous contents.
    ///
    /// # Errors
    ///
    /// Propagates backend failures (I/O errors, exhausted swap space,
    /// crashed servers).
    fn page_out(&mut self, id: PageId, page: &Page) -> Result<()>;

    /// Retrieves the page stored under `id`.
    ///
    /// # Errors
    ///
    /// Returns [`rmp_types::RmpError::PageNotFound`] when `id` was never
    /// paged out (or was freed), and propagates backend failures.
    fn page_in(&mut self, id: PageId) -> Result<Page>;

    /// Releases the page stored under `id`. Freeing an absent page is not
    /// an error (the kernel may free swap it never wrote).
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    fn free(&mut self, id: PageId) -> Result<()>;

    /// Returns `true` when a page is currently stored under `id`.
    fn contains(&self, id: PageId) -> bool;

    /// Flushes buffered state (e.g. seals a partial parity group).
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    /// Cumulative transfer statistics for this device.
    fn stats(&self) -> TransferStats;
}

/// Blanket implementation so `Box<dyn PagingDevice>` is itself a device.
impl PagingDevice for Box<dyn PagingDevice> {
    fn page_out(&mut self, id: PageId, page: &Page) -> Result<()> {
        (**self).page_out(id, page)
    }

    fn page_in(&mut self, id: PageId) -> Result<Page> {
        (**self).page_in(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        (**self).free(id)
    }

    fn contains(&self, id: PageId) -> bool {
        (**self).contains(id)
    }

    fn flush(&mut self) -> Result<()> {
        (**self).flush()
    }

    fn stats(&self) -> TransferStats {
        (**self).stats()
    }
}
