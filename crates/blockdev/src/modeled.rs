//! Virtual-clock disk timing model.

use rmp_types::{Hw1996, Page, PageId, Result, TransferStats};

use crate::traits::PagingDevice;

/// Analytic timing model of a 1996 paging disk (the DEC RZ55).
///
/// Per request the model charges:
///
/// * a seek whenever the request is not sequential with the previous one
///   (the kernel's page clustering makes runs of adjacent blocks
///   sequential, which is why the paper measures ~17 ms per page rather
///   than the ~31 ms a fully random access would cost);
/// * average rotational latency on *every* request — the RZ55 has no
///   write cache, so even back-to-back writes wait for the platter;
/// * the bandwidth transfer time of one page.
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Seek time charged on non-sequential requests, ms.
    pub seek_ms: f64,
    /// Rotational latency charged on non-sequential requests, ms.
    pub rotation_ms: f64,
    /// Transfer time per page, ms.
    pub transfer_ms: f64,
}

impl DiskModel {
    /// The DEC RZ55 model built from the paper's constants.
    pub fn rz55() -> Self {
        let hw = Hw1996::default();
        DiskModel {
            seek_ms: hw.disk_avg_seek_ms,
            rotation_ms: hw.disk_avg_rotation_ms,
            transfer_ms: hw.raw_disk_transfer_ms(),
        }
    }

    /// Cost of one request, ms.
    pub fn request_ms(&self, sequential: bool) -> f64 {
        if sequential {
            self.rotation_ms + self.transfer_ms
        } else {
            self.seek_ms + self.rotation_ms + self.transfer_ms
        }
    }

    /// Cost of one request given the seek distance in slots and the total
    /// occupied span. Real seek time grows roughly with the square root
    /// of the distance (arm acceleration), from ~1/3 of the average seek
    /// for track-to-track moves up to ~1.6x for full strokes; `seek_ms`
    /// is the average over a uniform distribution.
    pub fn request_ms_at_distance(&self, distance: u64, span: u64) -> f64 {
        if distance <= 1 {
            return self.rotation_ms + self.transfer_ms;
        }
        let frac = (distance as f64 / span.max(1) as f64).min(1.0);
        let seek = self.seek_ms * (0.33 + 1.27 * frac.sqrt());
        seek + self.rotation_ms + self.transfer_ms
    }
}

/// Wraps any [`PagingDevice`] and charges each request to a virtual clock
/// according to a [`DiskModel`], without sleeping.
///
/// Functional experiments run at memory speed while still reporting the
/// 1996-scale disk time the same request stream would have cost; the
/// figure harnesses read [`ModeledDisk::elapsed_ms`] to produce the DISK
/// bars of Figures 2–5.
#[derive(Debug)]
pub struct ModeledDisk<D> {
    inner: D,
    model: DiskModel,
    /// Swap-slot allocation: a real swap device writes evicted pages to
    /// slots assigned in arrival order (the kernel's swap clustering), so
    /// sequentiality is judged on slots, not logical page ids.
    slots: std::collections::HashMap<PageId, u64>,
    next_slot: u64,
    last_slot: Option<u64>,
    elapsed_ms: f64,
    sequential_hits: u64,
    random_hits: u64,
}

impl<D: PagingDevice> ModeledDisk<D> {
    /// Wraps `inner` with the given timing model.
    pub fn new(inner: D, model: DiskModel) -> Self {
        ModeledDisk {
            inner,
            model,
            slots: std::collections::HashMap::new(),
            next_slot: 0,
            last_slot: None,
            elapsed_ms: 0.0,
            sequential_hits: 0,
            random_hits: 0,
        }
    }

    /// Wraps `inner` with the RZ55 model.
    pub fn rz55(inner: D) -> Self {
        ModeledDisk::new(inner, DiskModel::rz55())
    }

    /// Virtual disk time consumed so far, ms.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ms
    }

    /// Requests that were sequential with their predecessor.
    pub fn sequential_requests(&self) -> u64 {
        self.sequential_hits
    }

    /// Requests that paid seek plus rotation.
    pub fn random_requests(&self) -> u64 {
        self.random_hits
    }

    /// Consumes the wrapper, returning the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Returns a reference to the inner device.
    pub fn get_ref(&self) -> &D {
        &self.inner
    }

    fn charge(&mut self, id: PageId) {
        let slot = match self.slots.get(&id) {
            Some(&s) => s,
            None => {
                let s = self.next_slot;
                self.next_slot += 1;
                self.slots.insert(id, s);
                s
            }
        };
        let (sequential, distance) = match self.last_slot {
            Some(last) => (slot == last + 1 || slot == last, slot.abs_diff(last)),
            None => (false, u64::MAX),
        };
        self.elapsed_ms += self
            .model
            .request_ms_at_distance(distance.min(self.next_slot.max(1)), self.next_slot.max(1));
        if sequential {
            self.sequential_hits += 1;
        } else {
            self.random_hits += 1;
        }
        self.last_slot = Some(slot);
    }
}

impl<D: PagingDevice> PagingDevice for ModeledDisk<D> {
    fn page_out(&mut self, id: PageId, page: &Page) -> Result<()> {
        self.charge(id);
        self.inner.page_out(id, page)
    }

    fn page_in(&mut self, id: PageId) -> Result<Page> {
        self.charge(id);
        self.inner.page_in(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.inner.free(id)
    }

    fn contains(&self, id: PageId) -> bool {
        self.inner.contains(id)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn stats(&self) -> TransferStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ramdisk::RamDisk;
    use rmp_types::Page;

    #[test]
    fn rz55_constants() {
        let m = DiskModel::rz55();
        assert!((m.seek_ms - 16.0).abs() < 1e-9);
        assert!(m.request_ms(false) > m.request_ms(true));
        // A random 8 KB access costs roughly the paper's 17 ms or more.
        assert!(m.request_ms(false) > 17.0);
    }

    #[test]
    fn sequential_requests_skip_seek() {
        let mut d = ModeledDisk::rz55(RamDisk::unbounded());
        d.page_out(PageId(0), &Page::zeroed()).expect("store");
        d.page_out(PageId(1), &Page::zeroed()).expect("store");
        d.page_out(PageId(2), &Page::zeroed()).expect("store");
        assert_eq!(d.random_requests(), 1, "only the first request seeks");
        assert_eq!(d.sequential_requests(), 2);
        // First request pays a (full-span) seek, the rest only rotation
        // plus transfer.
        let expected = d.model.request_ms_at_distance(1, 1) * 2.0;
        assert!(d.elapsed_ms() > expected);
        assert!(d.elapsed_ms() < expected + d.model.request_ms(false) * 1.7);
    }

    #[test]
    fn first_writes_cluster_sequentially() {
        // Swap clustering: first-time writes of *scattered* page ids are
        // assigned consecutive slots, so only the first pays a seek.
        let mut d = ModeledDisk::rz55(RamDisk::unbounded());
        for id in [0u64, 100, 7, 55] {
            d.page_out(PageId(id), &Page::zeroed()).expect("store");
        }
        assert_eq!(d.random_requests(), 1);
        assert_eq!(d.sequential_requests(), 3);
    }

    #[test]
    fn scattered_rereads_pay_positioning() {
        let mut d = ModeledDisk::rz55(RamDisk::unbounded());
        for id in 0..4u64 {
            d.page_out(PageId(id), &Page::zeroed()).expect("store");
        }
        // Re-reads against the write order: every one seeks.
        for id in [2u64, 0, 3, 1] {
            let _ = d.page_in(PageId(id)).expect("load");
        }
        assert_eq!(
            d.random_requests(),
            1 + 4,
            "first write + 4 scattered reads"
        );
    }

    #[test]
    fn repeated_id_counts_as_sequential() {
        let mut d = ModeledDisk::rz55(RamDisk::unbounded());
        d.page_out(PageId(3), &Page::zeroed()).expect("store");
        let _ = d.page_in(PageId(3)).expect("load");
        assert_eq!(d.sequential_requests(), 1);
    }

    #[test]
    fn passthrough_preserves_contents_and_stats() {
        let mut d = ModeledDisk::rz55(RamDisk::unbounded());
        let p = Page::deterministic(4);
        d.page_out(PageId(9), &p).expect("store");
        assert!(d.contains(PageId(9)));
        assert_eq!(d.page_in(PageId(9)).expect("load"), p);
        d.free(PageId(9)).expect("free");
        assert!(!d.contains(PageId(9)));
        assert_eq!(d.stats().pageouts, 1);
    }
}
