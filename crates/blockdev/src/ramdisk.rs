//! In-memory paging device.

use std::collections::HashMap;

use rmp_types::{Page, PageId, Result, RmpError, TransferStats};

use crate::traits::PagingDevice;

/// A [`PagingDevice`] backed by a `HashMap` in local memory.
///
/// Used as the reference device in tests, and by simulations that need a
/// correct store without I/O. An optional capacity limit makes it useful
/// for modelling a server that runs out of swap frames.
///
/// # Examples
///
/// ```
/// use rmp_blockdev::{PagingDevice, RamDisk};
/// use rmp_types::{Page, PageId};
///
/// let mut disk = RamDisk::unbounded();
/// disk.page_out(PageId(0), &Page::filled(7)).unwrap();
/// assert_eq!(disk.page_in(PageId(0)).unwrap(), Page::filled(7));
/// ```
#[derive(Debug, Default)]
pub struct RamDisk {
    pages: HashMap<PageId, Page>,
    capacity: Option<usize>,
    stats: TransferStats,
}

impl RamDisk {
    /// Creates a RAM disk with no capacity limit.
    pub fn unbounded() -> Self {
        RamDisk::default()
    }

    /// Creates a RAM disk that holds at most `pages` pages.
    pub fn with_capacity(pages: usize) -> Self {
        RamDisk {
            capacity: Some(pages),
            ..RamDisk::default()
        }
    }

    /// Number of pages currently stored.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Returns `true` when no pages are stored.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Remaining free frames, or `usize::MAX` when unbounded.
    pub fn free_frames(&self) -> usize {
        match self.capacity {
            Some(cap) => cap.saturating_sub(self.pages.len()),
            None => usize::MAX,
        }
    }
}

impl PagingDevice for RamDisk {
    fn page_out(&mut self, id: PageId, page: &Page) -> Result<()> {
        if let Some(cap) = self.capacity {
            if !self.pages.contains_key(&id) && self.pages.len() >= cap {
                return Err(RmpError::Io(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    format!("ram disk full at {cap} pages"),
                )));
            }
        }
        self.pages.insert(id, page.clone());
        self.stats.pageouts += 1;
        Ok(())
    }

    fn page_in(&mut self, id: PageId) -> Result<Page> {
        self.stats.pageins += 1;
        self.pages
            .get(&id)
            .cloned()
            .ok_or(RmpError::PageNotFound(id))
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.pages.remove(&id);
        Ok(())
    }

    fn contains(&self, id: PageId) -> bool {
        self.pages.contains_key(&id)
    }

    fn stats(&self) -> TransferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_pages() {
        let mut d = RamDisk::unbounded();
        let p = Page::deterministic(1);
        d.page_out(PageId(5), &p).expect("store");
        assert!(d.contains(PageId(5)));
        assert_eq!(d.page_in(PageId(5)).expect("load"), p);
    }

    #[test]
    fn missing_page_is_not_found() {
        let mut d = RamDisk::unbounded();
        assert!(matches!(
            d.page_in(PageId(1)),
            Err(RmpError::PageNotFound(PageId(1)))
        ));
    }

    #[test]
    fn free_is_idempotent() {
        let mut d = RamDisk::unbounded();
        d.page_out(PageId(1), &Page::zeroed()).expect("store");
        d.free(PageId(1)).expect("free");
        assert!(!d.contains(PageId(1)));
        d.free(PageId(1)).expect("free again");
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut d = RamDisk::with_capacity(2);
        d.page_out(PageId(0), &Page::zeroed()).expect("store");
        d.page_out(PageId(1), &Page::zeroed()).expect("store");
        assert!(d.page_out(PageId(2), &Page::zeroed()).is_err());
        // Overwriting an existing page does not need a free frame.
        d.page_out(PageId(1), &Page::filled(1)).expect("overwrite");
        assert_eq!(d.free_frames(), 0);
        d.free(PageId(0)).expect("free");
        d.page_out(PageId(2), &Page::zeroed()).expect("now fits");
    }

    #[test]
    fn stats_count_operations() {
        let mut d = RamDisk::unbounded();
        d.page_out(PageId(0), &Page::zeroed()).expect("store");
        d.page_out(PageId(1), &Page::zeroed()).expect("store");
        let _ = d.page_in(PageId(0));
        let _ = d.page_in(PageId(9)); // Miss still counts as a request.
        assert_eq!(d.stats().pageouts, 2);
        assert_eq!(d.stats().pageins, 2);
    }

    #[test]
    fn boxed_dyn_device_works() {
        let mut d: Box<dyn PagingDevice> = Box::new(RamDisk::unbounded());
        d.page_out(PageId(3), &Page::filled(3)).expect("store");
        assert!(d.contains(PageId(3)));
        assert_eq!(d.stats().pageouts, 1);
    }
}
