//! Asynchronous write-behind queueing for pageouts.
//!
//! The DEC OSF/1 kernel does not block the faulting process on pageouts —
//! the paging daemon writes evicted pages in the background, and only
//! pageins are synchronous. [`WriteBehind`] reproduces that structure for
//! any [`PagingDevice`]: pageouts enqueue onto a bounded channel drained
//! by a worker thread, pageins are answered from the pending queue when
//! the page has not reached the device yet (read-your-writes), and
//! `flush` forms a barrier.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use rmp_types::{Page, PageId, Result, RmpError, TransferStats};

use crate::traits::PagingDevice;

enum Job {
    Write(PageId, Page),
    Free(PageId),
    /// Barrier: flush the device and signal completion.
    Flush(Sender<Result<()>>),
    Stop,
}

struct SharedState<D> {
    /// Pages enqueued but not yet on the device, for read-your-writes.
    pending: Mutex<HashMap<PageId, Page>>,
    /// The device, owned by the worker but accessed for synchronous
    /// pageins under the lock.
    device: Mutex<D>,
    /// First asynchronous error, surfaced on the next caller operation.
    error: Mutex<Option<RmpError>>,
}

/// A [`PagingDevice`] wrapper whose pageouts complete asynchronously.
///
/// # Examples
///
/// ```
/// use rmp_blockdev::{PagingDevice, RamDisk, WriteBehind};
/// use rmp_types::{Page, PageId};
///
/// let mut dev = WriteBehind::new(RamDisk::unbounded(), 64);
/// dev.page_out(PageId(1), &Page::filled(7)).unwrap();
/// // Read-your-writes even before the worker drains the queue.
/// assert_eq!(dev.page_in(PageId(1)).unwrap(), Page::filled(7));
/// dev.flush().unwrap(); // Barrier: everything durable on the device.
/// ```
pub struct WriteBehind<D: PagingDevice + 'static> {
    shared: Arc<SharedState<D>>,
    sender: Sender<Job>,
    worker: Option<JoinHandle<()>>,
    stats: TransferStats,
}

impl<D: PagingDevice + 'static> WriteBehind<D> {
    /// Wraps `device` with a queue of at most `queue_depth` pending
    /// pageouts; a full queue applies back-pressure (like a paging daemon
    /// falling behind).
    ///
    /// # Panics
    ///
    /// Panics when `queue_depth` is zero.
    pub fn new(device: D, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue depth must be positive");
        let shared = Arc::new(SharedState {
            pending: Mutex::new(HashMap::new()),
            device: Mutex::new(device),
            error: Mutex::new(None),
        });
        let (sender, receiver) = bounded::<Job>(queue_depth);
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("rmp-writebehind".into())
            .spawn(move || {
                while let Ok(job) = receiver.recv() {
                    match job {
                        Job::Write(id, page) => {
                            let result = worker_shared.device.lock().page_out(id, &page);
                            match result {
                                Ok(()) => {
                                    // Only clear the pending copy if it is
                                    // still this version (a newer write may
                                    // have replaced it meanwhile).
                                    let mut pending = worker_shared.pending.lock();
                                    if pending.get(&id) == Some(&page) {
                                        pending.remove(&id);
                                    }
                                }
                                Err(e) => {
                                    worker_shared.error.lock().get_or_insert(e);
                                }
                            }
                        }
                        Job::Free(id) => {
                            if let Err(e) = worker_shared.device.lock().free(id) {
                                worker_shared.error.lock().get_or_insert(e);
                            }
                        }
                        Job::Flush(done) => {
                            let result = worker_shared.device.lock().flush();
                            let _ = done.send(result);
                        }
                        Job::Stop => break,
                    }
                }
            })
            .expect("spawn write-behind worker");
        WriteBehind {
            shared,
            sender,
            worker: Some(worker),
            stats: TransferStats::default(),
        }
    }

    /// Pages enqueued but not yet written to the device.
    pub fn pending(&self) -> usize {
        self.shared.pending.lock().len()
    }

    fn take_error(&self) -> Result<()> {
        match self.shared.error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl<D: PagingDevice + 'static> PagingDevice for WriteBehind<D> {
    fn page_out(&mut self, id: PageId, page: &Page) -> Result<()> {
        self.take_error()?;
        self.stats.pageouts += 1;
        self.shared.pending.lock().insert(id, page.clone());
        self.sender
            .send(Job::Write(id, page.clone()))
            .map_err(|_| RmpError::Io(std::io::Error::other("write-behind worker gone")))?;
        Ok(())
    }

    fn page_in(&mut self, id: PageId) -> Result<Page> {
        self.take_error()?;
        self.stats.pageins += 1;
        // Read-your-writes: the queue may hold a newer version than the
        // device.
        if let Some(page) = self.shared.pending.lock().get(&id).cloned() {
            return Ok(page);
        }
        self.shared.device.lock().page_in(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.take_error()?;
        self.shared.pending.lock().remove(&id);
        self.sender
            .send(Job::Free(id))
            .map_err(|_| RmpError::Io(std::io::Error::other("write-behind worker gone")))?;
        Ok(())
    }

    fn contains(&self, id: PageId) -> bool {
        self.shared.pending.lock().contains_key(&id) || self.shared.device.lock().contains(id)
    }

    fn flush(&mut self) -> Result<()> {
        self.take_error()?;
        let (tx, rx) = bounded(1);
        self.sender
            .send(Job::Flush(tx))
            .map_err(|_| RmpError::Io(std::io::Error::other("write-behind worker gone")))?;
        rx.recv()
            .map_err(|_| RmpError::Io(std::io::Error::other("write-behind worker gone")))??;
        self.take_error()
    }

    fn stats(&self) -> TransferStats {
        self.stats
    }
}

impl<D: PagingDevice + 'static> Drop for WriteBehind<D> {
    fn drop(&mut self) {
        let _ = self.sender.send(Job::Stop);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ramdisk::RamDisk;

    #[test]
    fn read_your_writes_before_drain() {
        let mut dev = WriteBehind::new(RamDisk::unbounded(), 256);
        for i in 0..50u64 {
            dev.page_out(PageId(i), &Page::deterministic(i))
                .expect("out");
        }
        for i in 0..50u64 {
            assert_eq!(dev.page_in(PageId(i)).expect("in"), Page::deterministic(i));
        }
    }

    #[test]
    fn flush_is_a_barrier() {
        let mut dev = WriteBehind::new(RamDisk::unbounded(), 256);
        for i in 0..100u64 {
            dev.page_out(PageId(i), &Page::deterministic(i))
                .expect("out");
        }
        dev.flush().expect("flush");
        assert_eq!(dev.pending(), 0, "queue drained by the barrier");
    }

    #[test]
    fn last_write_wins_under_rewrites() {
        let mut dev = WriteBehind::new(RamDisk::unbounded(), 256);
        for round in 0..10u64 {
            dev.page_out(PageId(7), &Page::deterministic(round))
                .expect("out");
        }
        assert_eq!(dev.page_in(PageId(7)).expect("in"), Page::deterministic(9));
        dev.flush().expect("flush");
        assert_eq!(dev.page_in(PageId(7)).expect("in"), Page::deterministic(9));
    }

    #[test]
    fn free_cancels_pending_write_visibility() {
        let mut dev = WriteBehind::new(RamDisk::unbounded(), 256);
        dev.page_out(PageId(1), &Page::filled(1)).expect("out");
        dev.free(PageId(1)).expect("free");
        dev.flush().expect("flush");
        assert!(!dev.contains(PageId(1)));
        assert!(dev.page_in(PageId(1)).is_err());
    }

    #[test]
    fn async_errors_surface_on_later_calls() {
        // A bounded RamDisk fills up; the failure arrives asynchronously
        // but must not be lost.
        let mut dev = WriteBehind::new(RamDisk::with_capacity(4), 64);
        for i in 0..20u64 {
            // Sends succeed; the worker hits StorageFull on the device.
            let _ = dev.page_out(PageId(i), &Page::zeroed());
        }
        let err = dev.flush();
        assert!(err.is_err(), "capacity error surfaced at the barrier");
    }
}
