//! File-backed swap partition.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use rmp_types::{Page, PageId, Result, RmpError, TransferStats, PAGE_SIZE};

/// A [`crate::PagingDevice`] backed by a regular file, addressed like a
/// swap partition: page `id` lives at byte offset `slot * PAGE_SIZE` where
/// `slot` is assigned on first write.
///
/// This is the local-disk path of the paper's RMP: "it may forward them ...
/// to the local disk using either a specified partition or a file". Slots
/// are recycled after a `free`, so the file grows to the high-water
/// mark of live pages, not the total number of pageouts.
///
/// # Examples
///
/// ```no_run
/// use rmp_blockdev::{FileDisk, PagingDevice};
/// use rmp_types::{Page, PageId};
///
/// let mut disk = FileDisk::create("/tmp/swapfile").unwrap();
/// disk.page_out(PageId(1), &Page::filled(1)).unwrap();
/// assert_eq!(disk.page_in(PageId(1)).unwrap(), Page::filled(1));
/// ```
#[derive(Debug)]
pub struct FileDisk {
    file: File,
    slots: HashMap<PageId, u64>,
    free_slots: Vec<u64>,
    next_slot: u64,
    stats: TransferStats,
}

impl FileDisk {
    /// Creates (or truncates) a swap file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileDisk {
            file,
            slots: HashMap::new(),
            free_slots: Vec::new(),
            next_slot: 0,
            stats: TransferStats::default(),
        })
    }

    /// Creates a swap device backed by an anonymous temporary file that is
    /// removed when dropped.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn temp() -> Result<Self> {
        let dir = std::env::temp_dir();
        // Use pid + a counter to avoid collisions without external crates.
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("rmp-swap-{}-{n}", std::process::id()));
        let disk = FileDisk::create(&path)?;
        // Unlink immediately; the open handle keeps the storage alive.
        let _ = std::fs::remove_file(&path);
        Ok(disk)
    }

    /// Number of live pages.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when no pages are stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// High-water mark of slots ever allocated (the file size in pages).
    pub fn allocated_slots(&self) -> u64 {
        self.next_slot
    }

    fn slot_for(&mut self, id: PageId) -> u64 {
        if let Some(&slot) = self.slots.get(&id) {
            return slot;
        }
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            let s = self.next_slot;
            self.next_slot += 1;
            s
        });
        self.slots.insert(id, slot);
        slot
    }
}

impl crate::traits::PagingDevice for FileDisk {
    fn page_out(&mut self, id: PageId, page: &Page) -> Result<()> {
        let slot = self.slot_for(id);
        self.file.seek(SeekFrom::Start(slot * PAGE_SIZE as u64))?;
        self.file.write_all(page.as_ref())?;
        self.stats.pageouts += 1;
        self.stats.disk_writes += 1;
        Ok(())
    }

    fn page_in(&mut self, id: PageId) -> Result<Page> {
        self.stats.pageins += 1;
        let &slot = self.slots.get(&id).ok_or(RmpError::PageNotFound(id))?;
        self.file.seek(SeekFrom::Start(slot * PAGE_SIZE as u64))?;
        let mut page = Page::zeroed();
        self.file.read_exact(page.as_mut())?;
        self.stats.disk_reads += 1;
        Ok(page)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        if let Some(slot) = self.slots.remove(&id) {
            self.free_slots.push(slot);
        }
        Ok(())
    }

    fn contains(&self, id: PageId) -> bool {
        self.slots.contains_key(&id)
    }

    fn flush(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }

    fn stats(&self) -> TransferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::PagingDevice;

    #[test]
    fn round_trips_many_pages() {
        let mut d = FileDisk::temp().expect("temp file");
        for i in 0..32u64 {
            d.page_out(PageId(i), &Page::deterministic(i))
                .expect("store");
        }
        for i in (0..32u64).rev() {
            assert_eq!(d.page_in(PageId(i)).expect("load"), Page::deterministic(i));
        }
        assert_eq!(d.len(), 32);
    }

    #[test]
    fn overwrite_reuses_slot() {
        let mut d = FileDisk::temp().expect("temp file");
        d.page_out(PageId(1), &Page::filled(1)).expect("store");
        d.page_out(PageId(1), &Page::filled(2)).expect("overwrite");
        assert_eq!(d.allocated_slots(), 1);
        assert_eq!(d.page_in(PageId(1)).expect("load"), Page::filled(2));
    }

    #[test]
    fn freed_slots_are_recycled() {
        let mut d = FileDisk::temp().expect("temp file");
        d.page_out(PageId(1), &Page::filled(1)).expect("store");
        d.page_out(PageId(2), &Page::filled(2)).expect("store");
        d.free(PageId(1)).expect("free");
        d.page_out(PageId(3), &Page::filled(3)).expect("store");
        assert_eq!(d.allocated_slots(), 2, "slot of page 1 recycled");
        assert_eq!(d.page_in(PageId(3)).expect("load"), Page::filled(3));
        assert!(matches!(
            d.page_in(PageId(1)),
            Err(RmpError::PageNotFound(_))
        ));
    }

    #[test]
    fn missing_page_not_found() {
        let mut d = FileDisk::temp().expect("temp file");
        assert!(matches!(
            d.page_in(PageId(0)),
            Err(RmpError::PageNotFound(_))
        ));
    }

    #[test]
    fn stats_track_disk_ops() {
        let mut d = FileDisk::temp().expect("temp file");
        d.page_out(PageId(0), &Page::zeroed()).expect("store");
        let _ = d.page_in(PageId(0));
        assert_eq!(d.stats().disk_writes, 1);
        assert_eq!(d.stats().disk_reads, 1);
    }
}
