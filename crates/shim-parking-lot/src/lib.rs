//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the standard-library primitives with `parking_lot`'s
//! poison-free API: `lock()` returns the guard directly, and a panic
//! while holding a lock does not poison it for later users.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose guard API matches `parking_lot::Mutex`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Ignores poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose guard API matches `parking_lot::RwLock`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Ignores poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock. Ignores poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock usable after a panicking holder");
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }
}
