//! The client-side parity buffer of the parity-logging policy.

use rmp_types::{Page, PageId, ServerId, StoreKey};

use crate::group::GroupMember;

/// A completed parity group ready to ship to the parity server.
///
/// Produced by [`ParityBuffer`] when `S` pages have been absorbed (or on a
/// forced flush). The caller transfers `parity` to the parity server and
/// registers `members` in the [`crate::group::GroupTable`].
#[derive(Clone, Debug)]
pub struct SealedGroup {
    /// XOR of all member pages.
    pub parity: Page,
    /// The pages covered by this parity, in absorption order.
    pub members: Vec<GroupMember>,
}

/// Client-maintained page-sized XOR accumulator (Section 2.2, Parity
/// Logging): "Each paged out page is XORed with a page size buffer
/// maintained by the client (which is initially filled with zeros)...
/// Whenever S pages have been transfered, the buffer is also transfered to
/// a parity server."
///
/// # Examples
///
/// ```
/// use rmp_parity::ParityBuffer;
/// use rmp_types::{Page, PageId, ServerId, StoreKey};
///
/// let mut buf = ParityBuffer::new(2);
/// assert!(buf
///     .absorb(PageId(0), StoreKey(100), ServerId(0), &Page::deterministic(1))
///     .is_none());
/// let sealed = buf
///     .absorb(PageId(1), StoreKey(101), ServerId(1), &Page::deterministic(2))
///     .expect("group of 2 complete");
/// assert_eq!(sealed.members.len(), 2);
/// ```
#[derive(Debug)]
pub struct ParityBuffer {
    acc: Page,
    members: Vec<GroupMember>,
    group_size: usize,
}

impl ParityBuffer {
    /// Creates a buffer that seals a group after `group_size` pages.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    pub fn new(group_size: usize) -> Self {
        assert!(group_size > 0, "parity group size must be positive");
        ParityBuffer {
            acc: Page::zeroed(),
            members: Vec::with_capacity(group_size),
            group_size,
        }
    }

    /// Number of pages absorbed since the last seal.
    pub fn pending(&self) -> usize {
        self.members.len()
    }

    /// Configured group size `S`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// XORs `page` (shipped to `server` under storage key `key` for logical
    /// page `id`) into the buffer.
    ///
    /// Returns the sealed group when this absorption completes a group of
    /// `S` pages; the buffer then resets to zero for the next group.
    pub fn absorb(
        &mut self,
        id: PageId,
        key: StoreKey,
        server: ServerId,
        page: &Page,
    ) -> Option<SealedGroup> {
        self.acc.xor_with(page);
        self.members.push(GroupMember {
            page_id: id,
            key,
            server,
            active: true,
        });
        if self.members.len() == self.group_size {
            Some(self.seal())
        } else {
            None
        }
    }

    /// Force-seals the current partial group (used at flush/shutdown so a
    /// crash cannot leave recently paged-out pages without parity cover).
    ///
    /// Returns `None` when nothing is pending.
    pub fn flush(&mut self) -> Option<SealedGroup> {
        if self.members.is_empty() {
            None
        } else {
            Some(self.seal())
        }
    }

    /// Members absorbed since the last seal, in order.
    pub fn members(&self) -> &[GroupMember] {
        &self.members
    }

    /// The XOR accumulated so far — the parity of the *pending* members.
    ///
    /// During crash recovery this is the parity page of the not-yet-sealed
    /// group: a pending page lost with its server is rebuilt by XORing
    /// this accumulator with the other pending members.
    pub fn accumulated(&self) -> &Page {
        &self.acc
    }

    /// Rewrites the recorded location of a pending member after recovery
    /// re-stored it elsewhere. Returns `true` when a member under
    /// (`old_key`) was found.
    pub fn relocate(&mut self, old_key: StoreKey, server: ServerId, key: StoreKey) -> bool {
        for m in &mut self.members {
            if m.key == old_key {
                m.server = server;
                m.key = key;
                return true;
            }
        }
        false
    }

    /// Discards all pending state (crash recovery re-logs the pending
    /// pages through fresh groups instead of sealing stale membership).
    pub fn reset(&mut self) {
        self.acc.clear();
        self.members.clear();
    }

    fn seal(&mut self) -> SealedGroup {
        let parity = std::mem::take(&mut self.acc);
        let members = std::mem::take(&mut self.members);
        self.members.reserve(self.group_size);
        SealedGroup { parity, members }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xor::xor_reduce;

    fn absorb_n(buf: &mut ParityBuffer, pages: &[Page]) -> Option<SealedGroup> {
        let mut sealed = None;
        for (i, p) in pages.iter().enumerate() {
            sealed = buf.absorb(
                PageId(i as u64),
                StoreKey(1000 + i as u64),
                ServerId((i % 4) as u32),
                p,
            );
        }
        sealed
    }

    #[test]
    fn seals_exactly_at_group_size() {
        let mut buf = ParityBuffer::new(4);
        for i in 0..3u64 {
            assert!(buf
                .absorb(
                    PageId(i),
                    StoreKey(i),
                    ServerId(i as u32),
                    &Page::deterministic(i)
                )
                .is_none());
            assert_eq!(buf.pending(), i as usize + 1);
        }
        let sealed = buf
            .absorb(PageId(3), StoreKey(3), ServerId(3), &Page::deterministic(3))
            .expect("sealed");
        assert_eq!(sealed.members.len(), 4);
        assert_eq!(buf.pending(), 0);
        assert!(sealed.members.iter().all(|m| m.active));
    }

    #[test]
    fn sealed_parity_is_xor_of_members() {
        let pages: Vec<Page> = (10..14).map(Page::deterministic).collect();
        let mut buf = ParityBuffer::new(4);
        let sealed = absorb_n(&mut buf, &pages).expect("sealed after 4");
        assert_eq!(sealed.parity, xor_reduce(pages.iter()));
    }

    #[test]
    fn buffer_resets_between_groups() {
        let mut buf = ParityBuffer::new(2);
        let pages: Vec<Page> = vec![Page::deterministic(1), Page::deterministic(2)];
        let g1 = absorb_n(&mut buf, &pages).expect("first group");
        let g2 = absorb_n(&mut buf, &pages).expect("second group");
        assert_eq!(g1.parity, g2.parity);
    }

    #[test]
    fn flush_seals_partial_group() {
        let mut buf = ParityBuffer::new(4);
        assert!(buf.flush().is_none());
        let p = Page::deterministic(5);
        buf.absorb(PageId(0), StoreKey(9), ServerId(0), &p);
        let sealed = buf.flush().expect("partial seal");
        assert_eq!(sealed.members.len(), 1);
        assert_eq!(sealed.parity, p);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn members_record_key_and_server() {
        let mut buf = ParityBuffer::new(1);
        let sealed = buf
            .absorb(
                PageId(7),
                StoreKey(70),
                ServerId(3),
                &Page::deterministic(0),
            )
            .expect("group of one");
        assert_eq!(sealed.members[0].page_id, PageId(7));
        assert_eq!(sealed.members[0].key, StoreKey(70));
        assert_eq!(sealed.members[0].server, ServerId(3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_group_size_panics() {
        let _ = ParityBuffer::new(0);
    }
}
