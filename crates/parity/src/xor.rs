//! XOR reduction and erasure reconstruction.

use rmp_types::Page;

/// XORs all `pages` together into a fresh page.
///
/// An empty iterator yields the zero page, the XOR identity.
///
/// # Examples
///
/// ```
/// use rmp_parity::xor::xor_reduce;
/// use rmp_types::Page;
///
/// let pages = [Page::deterministic(1), Page::deterministic(2)];
/// let parity = xor_reduce(pages.iter());
/// // XORing the parity with one page recovers the other.
/// let mut recovered = parity.clone();
/// recovered.xor_with(&pages[0]);
/// assert_eq!(recovered, pages[1]);
/// ```
pub fn xor_reduce<'a, I>(pages: I) -> Page
where
    I: IntoIterator<Item = &'a Page>,
{
    let mut acc = Page::zeroed();
    for p in pages {
        acc.xor_with(p);
    }
    acc
}

/// Reconstructs the missing member of a parity group.
///
/// Given the group's `parity` page and every `survivor` member, returns the
/// lost page: `parity XOR survivor_1 XOR ... XOR survivor_n`. This is how
/// the pager restores the pages of a crashed server ("all its pages can be
/// restored by XORing all pages within each parity group").
pub fn reconstruct<'a, I>(parity: &Page, survivors: I) -> Page
where
    I: IntoIterator<Item = &'a Page>,
{
    let mut acc = parity.clone();
    for p in survivors {
        acc.xor_with(p);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: u64) -> Vec<Page> {
        (0..n).map(Page::deterministic).collect()
    }

    #[test]
    fn empty_reduce_is_zero() {
        assert!(xor_reduce(std::iter::empty::<&Page>()).is_zero());
    }

    #[test]
    fn single_page_reduce_is_identity() {
        let p = Page::deterministic(9);
        assert_eq!(xor_reduce([&p].into_iter()), p);
    }

    #[test]
    fn reconstruct_recovers_any_member() {
        let members = group(5);
        let parity = xor_reduce(members.iter());
        for lost in 0..members.len() {
            let survivors: Vec<&Page> = members
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(_, p)| p)
                .collect();
            let rebuilt = reconstruct(&parity, survivors);
            assert_eq!(rebuilt, members[lost], "member {lost}");
        }
    }

    #[test]
    fn reconstruct_with_all_members_is_zero() {
        let members = group(4);
        let parity = xor_reduce(members.iter());
        let r = reconstruct(&parity, members.iter());
        assert!(r.is_zero());
    }

    #[test]
    fn parity_of_identical_pair_is_zero() {
        let p = Page::deterministic(1);
        let parity = xor_reduce([&p, &p]);
        assert!(parity.is_zero());
    }
}
