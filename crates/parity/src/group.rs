//! The parity-group log of the parity-logging policy.
//!
//! Every sealed parity group is recorded here. The table answers the
//! questions the pager asks at runtime:
//!
//! * where is the current (active) version of a logical page?
//! * which storage can be freed because a whole group went inactive?
//! * which groups and pages are needed to recover a crashed server?
//! * which fragmented groups should garbage collection compact?
//!
//! The table never performs I/O; it returns *plans* (lists of keys to
//! fetch, free or re-log) that `rmp-core` executes against live servers.

use std::collections::{BTreeMap, HashMap};

use rmp_types::{GroupId, PageId, Result, RmpError, ServerId, StoreKey};

/// One member slot of a parity group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupMember {
    /// Logical page covered by this slot.
    pub page_id: PageId,
    /// Storage key of this *version* of the page on its server.
    pub key: StoreKey,
    /// Server holding this version.
    pub server: ServerId,
    /// Whether this is the page's current version. Inactive versions stay
    /// on their server (footnote 3 of the paper: deleting them would force
    /// a parity update) until the whole group is reclaimed.
    pub active: bool,
}

/// A sealed parity group as recorded in the table.
#[derive(Clone, Debug)]
pub struct GroupState {
    /// Member slots in absorption order.
    pub members: Vec<GroupMember>,
    /// Server holding the parity page.
    pub parity_server: ServerId,
    /// Storage key of the parity page.
    pub parity_key: StoreKey,
    active: usize,
}

impl GroupState {
    /// Number of members still active.
    pub fn active_members(&self) -> usize {
        self.active
    }

    /// Fraction of members still active (0.0 ..= 1.0).
    pub fn active_fraction(&self) -> f64 {
        if self.members.is_empty() {
            0.0
        } else {
            self.active as f64 / self.members.len() as f64
        }
    }
}

/// Where the active version of a page lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageLocation {
    /// Group covering the active version.
    pub group: GroupId,
    /// Member slot index inside the group.
    pub slot: usize,
    /// Storage key of the version.
    pub key: StoreKey,
    /// Server holding it.
    pub server: ServerId,
}

/// Storage freed by reclaiming a fully-inactive group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReclaimedGroup {
    /// The reclaimed group.
    pub group: GroupId,
    /// `(server, key)` pairs of every member version to free.
    pub member_storage: Vec<(ServerId, StoreKey)>,
    /// Location of the parity page to free.
    pub parity_storage: (ServerId, StoreKey),
}

/// Instructions for recovering the contents lost with a crashed server.
#[derive(Clone, Debug)]
pub struct GroupRecovery {
    /// The affected group.
    pub group: GroupId,
    /// The member slot lost with the crash (its contents must be rebuilt).
    pub lost: GroupMember,
    /// Index of the lost member inside the group (for
    /// [`GroupTable::relocate_member`]).
    pub slot: usize,
    /// Surviving member versions to fetch (`(server, key)`), across **all**
    /// slots including inactive ones — the parity page was computed over
    /// every member at seal time.
    pub fetch: Vec<(ServerId, StoreKey)>,
    /// Location of the parity page, unless the parity itself was lost.
    pub parity: Option<(ServerId, StoreKey)>,
}

/// Parity recomputation needed because a *parity* page was lost.
#[derive(Clone, Debug)]
pub struct ParityRebuild {
    /// The affected group.
    pub group: GroupId,
    /// All member versions to fetch and XOR into a fresh parity page.
    pub fetch: Vec<(ServerId, StoreKey)>,
}

/// A garbage-collection plan: which groups to compact and which active
/// pages must be re-logged (fetched and paged out again through the normal
/// parity-logging path) before the victims can be reclaimed.
#[derive(Clone, Debug, Default)]
pub struct GcPlan {
    /// Groups chosen for compaction.
    pub victims: Vec<GroupId>,
    /// Active members that must be re-logged.
    pub relog: Vec<GroupMember>,
}

/// The client-side log of sealed parity groups.
///
/// # Examples
///
/// ```
/// use rmp_parity::{GroupMember, GroupTable};
/// use rmp_types::{PageId, ServerId, StoreKey};
///
/// let mut table = GroupTable::new();
/// let member = |p, k, s| GroupMember {
///     page_id: PageId(p),
///     key: StoreKey(k),
///     server: ServerId(s),
///     active: true,
/// };
/// table.register(vec![member(1, 101, 0), member(2, 102, 1)], ServerId(9), StoreKey(900));
/// // Re-paging-out page 1 into a later group supersedes its old version.
/// let (_, reclaimed) =
///     table.register(vec![member(1, 201, 1), member(3, 203, 2)], ServerId(9), StoreKey(901));
/// assert!(reclaimed.is_empty(), "page 2 still pins the first group");
/// assert_eq!(table.location_of(PageId(1)).unwrap().key, StoreKey(201));
/// ```
#[derive(Debug, Default)]
pub struct GroupTable {
    groups: BTreeMap<GroupId, GroupState>,
    /// Active version location per logical page.
    current: HashMap<PageId, (GroupId, usize)>,
    next_id: GroupId,
    reclaimed_total: u64,
}

impl GroupTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        GroupTable::default()
    }

    /// Records a sealed group and returns its id plus any groups that
    /// became fully inactive (and were removed) because members of the new
    /// group superseded their last active slots.
    ///
    /// Every member of the new group becomes the active version of its
    /// logical page; the previously active version (if any) is marked
    /// inactive in its group, exactly the paper's "every time a page is
    /// repaged out, it is marked in the old parity group containing it as
    /// inactive".
    pub fn register(
        &mut self,
        members: Vec<GroupMember>,
        parity_server: ServerId,
        parity_key: StoreKey,
    ) -> (GroupId, Vec<ReclaimedGroup>) {
        let id = self.next_id;
        self.next_id = self.next_id.next();
        let member_pages: Vec<PageId> = members.iter().map(|m| m.page_id).collect();
        debug_assert!(
            members.iter().all(|m| m.active),
            "freshly sealed members must be active"
        );
        let active = members.len();
        // Install the group first so that superseding can deactivate slots
        // of this very group (the same page can be paged out twice within
        // one pending group).
        self.groups.insert(
            id,
            GroupState {
                members,
                parity_server,
                parity_key,
                active,
            },
        );
        let mut reclaimed = Vec::new();
        for (slot, page_id) in member_pages.into_iter().enumerate() {
            if let Some((old_group, old_slot)) = self.current.insert(page_id, (id, slot)) {
                if old_group == id && old_slot == slot {
                    continue;
                }
                if let Some(r) = self.deactivate(old_group, old_slot) {
                    reclaimed.push(r);
                }
            }
        }
        (id, reclaimed)
    }

    /// Marks the active version of `page_id` inactive without installing a
    /// replacement (used when a page is freed outright, e.g. the process
    /// exited and its swap space is released).
    ///
    /// Returns the reclaimed group if this was its last active member.
    pub fn drop_page(&mut self, page_id: PageId) -> Option<ReclaimedGroup> {
        let (group, slot) = self.current.remove(&page_id)?;
        self.deactivate(group, slot)
    }

    fn deactivate(&mut self, group: GroupId, slot: usize) -> Option<ReclaimedGroup> {
        let state = self
            .groups
            .get_mut(&group)
            .expect("current map points at live group");
        let member = &mut state.members[slot];
        if member.active {
            member.active = false;
            state.active -= 1;
        }
        if state.active == 0 {
            let state = self.groups.remove(&group).expect("group exists");
            self.reclaimed_total += 1;
            Some(ReclaimedGroup {
                group,
                member_storage: state.members.iter().map(|m| (m.server, m.key)).collect(),
                parity_storage: (state.parity_server, state.parity_key),
            })
        } else {
            None
        }
    }

    /// Returns the location of the active version of `page_id`, if it is
    /// covered by a sealed group.
    pub fn location_of(&self, page_id: PageId) -> Option<PageLocation> {
        let &(group, slot) = self.current.get(&page_id)?;
        let member = &self.groups[&group].members[slot];
        Some(PageLocation {
            group,
            slot,
            key: member.key,
            server: member.server,
        })
    }

    /// Returns the state of a group, if it still exists.
    pub fn group(&self, id: GroupId) -> Option<&GroupState> {
        self.groups.get(&id)
    }

    /// Number of live (not yet reclaimed) groups.
    pub fn live_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total groups reclaimed over the table's lifetime.
    pub fn reclaimed_groups(&self) -> u64 {
        self.reclaimed_total
    }

    /// Total member versions currently occupying server memory, including
    /// inactive ones — the quantity the overflow memory must absorb.
    pub fn stored_versions(&self) -> usize {
        self.groups.values().map(|g| g.members.len()).sum()
    }

    /// Member versions that are the current version of their page.
    pub fn active_versions(&self) -> usize {
        self.groups.values().map(|g| g.active).sum()
    }

    /// Parity pages currently stored.
    pub fn parity_pages(&self) -> usize {
        self.groups.len()
    }

    /// Overall fragmentation: fraction of stored versions that are
    /// inactive. Zero when empty.
    pub fn fragmentation(&self) -> f64 {
        let stored = self.stored_versions();
        if stored == 0 {
            return 0.0;
        }
        1.0 - self.active_versions() as f64 / stored as f64
    }

    /// Builds the recovery plans for a crash of `server`.
    ///
    /// Returns one [`GroupRecovery`] per member version lost (active or
    /// inactive — inactive versions participate in other pages' parity
    /// equations and must be rebuilt too) and one [`ParityRebuild`] per
    /// parity page lost.
    ///
    /// # Errors
    ///
    /// Returns [`RmpError::Unrecoverable`] when any single group lost two
    /// or more pieces (two members, or a member and its parity) — beyond
    /// single-failure tolerance.
    pub fn recovery_plan(
        &self,
        server: ServerId,
    ) -> Result<(Vec<GroupRecovery>, Vec<ParityRebuild>)> {
        let mut recoveries = Vec::new();
        let mut rebuilds = Vec::new();
        for (&gid, state) in &self.groups {
            let lost: Vec<usize> = state
                .members
                .iter()
                .enumerate()
                .filter(|(_, m)| m.server == server)
                .map(|(i, _)| i)
                .collect();
            let parity_lost = state.parity_server == server;
            if lost.len() + usize::from(parity_lost) > 1 {
                return Err(RmpError::Unrecoverable(format!(
                    "group {gid} lost {} member(s){} on {server}",
                    lost.len(),
                    if parity_lost { " plus its parity" } else { "" },
                )));
            }
            if let Some(&slot) = lost.first() {
                recoveries.push(GroupRecovery {
                    group: gid,
                    lost: state.members[slot],
                    slot,
                    fetch: state
                        .members
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != slot)
                        .map(|(_, m)| (m.server, m.key))
                        .collect(),
                    parity: Some((state.parity_server, state.parity_key)),
                });
            } else if parity_lost {
                rebuilds.push(ParityRebuild {
                    group: gid,
                    fetch: state.members.iter().map(|m| (m.server, m.key)).collect(),
                });
            }
        }
        Ok((recoveries, rebuilds))
    }

    /// Rewrites the recorded location of a recovered piece after the
    /// recovery executor stored it elsewhere.
    ///
    /// `slot` addresses the member inside `group`; pass the new server and
    /// key it now lives under.
    pub fn relocate_member(
        &mut self,
        group: GroupId,
        slot: usize,
        server: ServerId,
        key: StoreKey,
    ) -> Result<()> {
        let state = self
            .groups
            .get_mut(&group)
            .ok_or_else(|| RmpError::Unrecoverable(format!("group {group} vanished")))?;
        let member = state
            .members
            .get_mut(slot)
            .ok_or_else(|| RmpError::Unrecoverable(format!("slot {slot} out of range")))?;
        member.server = server;
        member.key = key;
        Ok(())
    }

    /// Rewrites the recorded location of a group's parity page.
    pub fn relocate_parity(
        &mut self,
        group: GroupId,
        server: ServerId,
        key: StoreKey,
    ) -> Result<()> {
        let state = self
            .groups
            .get_mut(&group)
            .ok_or_else(|| RmpError::Unrecoverable(format!("group {group} vanished")))?;
        state.parity_server = server;
        state.parity_key = key;
        Ok(())
    }

    /// Chooses a garbage-collection plan: every group whose active fraction
    /// is at most `max_active_fraction` becomes a victim, and its active
    /// members are scheduled for re-logging.
    ///
    /// The paper performs GC "freeing parity sets by combining their active
    /// pages to new ones" when a server runs out of overflow memory; with
    /// 10 % overflow and 4 servers they "never had to perform garbage
    /// collection", which our experiments confirm.
    pub fn gc_plan(&self, max_active_fraction: f64) -> GcPlan {
        let mut plan = GcPlan::default();
        for (&gid, state) in &self.groups {
            if state.active > 0 && state.active_fraction() <= max_active_fraction {
                plan.victims.push(gid);
                plan.relog
                    .extend(state.members.iter().filter(|m| m.active).copied());
            }
        }
        plan
    }

    /// Iterates over all live groups.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, &GroupState)> {
        self.groups.iter().map(|(&id, st)| (id, st))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(page: u64, key: u64, server: u32) -> GroupMember {
        GroupMember {
            page_id: PageId(page),
            key: StoreKey(key),
            server: ServerId(server),
            active: true,
        }
    }

    fn register_group(
        table: &mut GroupTable,
        specs: &[(u64, u64, u32)],
        pserver: u32,
        pkey: u64,
    ) -> (GroupId, Vec<ReclaimedGroup>) {
        let members = specs.iter().map(|&(p, k, s)| member(p, k, s)).collect();
        table.register(members, ServerId(pserver), StoreKey(pkey))
    }

    #[test]
    fn register_tracks_active_locations() {
        let mut t = GroupTable::new();
        let (gid, reclaimed) =
            register_group(&mut t, &[(1, 101, 0), (2, 102, 1), (3, 103, 2)], 9, 900);
        assert!(reclaimed.is_empty());
        let loc = t.location_of(PageId(2)).expect("page registered");
        assert_eq!(loc.group, gid);
        assert_eq!(loc.key, StoreKey(102));
        assert_eq!(loc.server, ServerId(1));
        assert_eq!(t.active_versions(), 3);
        assert_eq!(t.stored_versions(), 3);
    }

    #[test]
    fn repageout_marks_old_version_inactive() {
        let mut t = GroupTable::new();
        let (g1, _) = register_group(&mut t, &[(1, 101, 0), (2, 102, 1)], 9, 900);
        // Page 1 is paged out again in a later group.
        let (_, reclaimed) = register_group(&mut t, &[(1, 201, 1), (5, 202, 0)], 9, 901);
        assert!(reclaimed.is_empty(), "group 1 still has page 2 active");
        assert_eq!(t.group(g1).expect("live").active_members(), 1);
        // The stale version still occupies storage (footnote 3).
        assert_eq!(t.stored_versions(), 4);
        assert_eq!(t.active_versions(), 3);
        assert!(t.fragmentation() > 0.0);
        // Reads now go to the new location.
        assert_eq!(t.location_of(PageId(1)).expect("live").key, StoreKey(201));
    }

    #[test]
    fn fully_inactive_group_is_reclaimed() {
        let mut t = GroupTable::new();
        let (g1, _) = register_group(&mut t, &[(1, 101, 0), (2, 102, 1)], 9, 900);
        let (_, r1) = register_group(&mut t, &[(1, 201, 1), (6, 206, 2)], 9, 901);
        assert!(r1.is_empty());
        let (_, r2) = register_group(&mut t, &[(2, 301, 2), (7, 306, 0)], 9, 902);
        assert_eq!(r2.len(), 1, "group 1 fully superseded");
        let reclaimed = &r2[0];
        assert_eq!(reclaimed.group, g1);
        assert_eq!(
            reclaimed.member_storage,
            vec![(ServerId(0), StoreKey(101)), (ServerId(1), StoreKey(102))]
        );
        assert_eq!(reclaimed.parity_storage, (ServerId(9), StoreKey(900)));
        assert!(t.group(g1).is_none());
        assert_eq!(t.reclaimed_groups(), 1);
    }

    #[test]
    fn drop_page_can_reclaim() {
        let mut t = GroupTable::new();
        let (g1, _) = register_group(&mut t, &[(1, 101, 0)], 9, 900);
        assert!(t.location_of(PageId(1)).is_some());
        let reclaimed = t.drop_page(PageId(1)).expect("last member dropped");
        assert_eq!(reclaimed.group, g1);
        assert!(t.location_of(PageId(1)).is_none());
        assert!(t.drop_page(PageId(1)).is_none(), "idempotent");
    }

    #[test]
    fn recovery_plan_covers_active_and_inactive_versions() {
        let mut t = GroupTable::new();
        register_group(&mut t, &[(1, 101, 0), (2, 102, 1)], 9, 900);
        register_group(&mut t, &[(1, 201, 1), (3, 203, 2)], 9, 901);
        // Server 1 holds: inactive version of page 2? No — page 2's active
        // version (key 102) and page 1's new active version (key 201).
        let (recoveries, rebuilds) = t.recovery_plan(ServerId(1)).expect("recoverable");
        assert_eq!(recoveries.len(), 2);
        assert!(rebuilds.is_empty());
        for r in &recoveries {
            assert_eq!(r.lost.server, ServerId(1));
            assert!(r.parity.is_some());
            // Survivors exclude the lost slot.
            assert!(r.fetch.iter().all(|&(s, _)| s != ServerId(1)));
        }
    }

    #[test]
    fn recovery_plan_handles_parity_server_crash() {
        let mut t = GroupTable::new();
        register_group(&mut t, &[(1, 101, 0), (2, 102, 1)], 9, 900);
        let (recoveries, rebuilds) = t.recovery_plan(ServerId(9)).expect("recoverable");
        assert!(recoveries.is_empty());
        assert_eq!(rebuilds.len(), 1);
        assert_eq!(rebuilds[0].fetch.len(), 2);
    }

    #[test]
    fn double_loss_in_one_group_is_unrecoverable() {
        let mut t = GroupTable::new();
        register_group(&mut t, &[(1, 101, 0), (2, 102, 0)], 9, 900);
        assert!(t.recovery_plan(ServerId(0)).is_err());
        // Member plus parity on the same server is equally fatal.
        let mut t2 = GroupTable::new();
        register_group(&mut t2, &[(1, 101, 0), (2, 102, 1)], 0, 900);
        assert!(t2.recovery_plan(ServerId(0)).is_err());
    }

    #[test]
    fn relocate_updates_locations() {
        let mut t = GroupTable::new();
        let (gid, _) = register_group(&mut t, &[(1, 101, 0), (2, 102, 1)], 9, 900);
        t.relocate_member(gid, 0, ServerId(5), StoreKey(555))
            .expect("relocates");
        assert_eq!(t.location_of(PageId(1)).expect("live").server, ServerId(5));
        t.relocate_parity(gid, ServerId(6), StoreKey(666))
            .expect("relocates");
        assert_eq!(t.group(gid).expect("live").parity_server, ServerId(6));
    }

    #[test]
    fn gc_plan_picks_fragmented_groups() {
        let mut t = GroupTable::new();
        // Group with 1 of 4 active (75 % fragmented).
        let (g1, _) = register_group(
            &mut t,
            &[(1, 101, 0), (2, 102, 1), (3, 103, 2), (4, 104, 3)],
            9,
            900,
        );
        register_group(
            &mut t,
            &[(1, 201, 0), (2, 202, 1), (3, 203, 2), (8, 204, 3)],
            9,
            901,
        );
        let plan = t.gc_plan(0.25);
        assert_eq!(plan.victims, vec![g1]);
        assert_eq!(plan.relog.len(), 1);
        assert_eq!(plan.relog[0].page_id, PageId(4));
        // A healthier threshold selects nothing.
        assert!(t.gc_plan(0.1).victims.is_empty());
    }

    #[test]
    fn gc_ignores_fully_active_groups() {
        let mut t = GroupTable::new();
        register_group(&mut t, &[(1, 101, 0), (2, 102, 1)], 9, 900);
        let plan = t.gc_plan(1.0);
        // Threshold 1.0 selects even fully-active groups — they have
        // active > 0 and fraction <= 1.0 — which is intentional: GC with
        // max threshold compacts everything.
        assert_eq!(plan.victims.len(), 1);
        assert_eq!(plan.relog.len(), 2);
    }

    #[test]
    fn duplicate_page_within_one_group_supersedes_in_place() {
        let mut t = GroupTable::new();
        // Page 1 paged out twice inside the same (partial-seal) group.
        let (gid, reclaimed) = register_group(&mut t, &[(1, 101, 0), (1, 102, 1)], 9, 900);
        assert!(reclaimed.is_empty());
        let g = t.group(gid).expect("live");
        assert_eq!(g.active_members(), 1, "first version superseded");
        assert!(!g.members[0].active);
        assert!(g.members[1].active);
        assert_eq!(t.location_of(PageId(1)).expect("live").key, StoreKey(102));
    }

    #[test]
    fn stats_on_empty_table() {
        let t = GroupTable::new();
        assert_eq!(t.live_groups(), 0);
        assert_eq!(t.fragmentation(), 0.0);
        assert_eq!(t.stored_versions(), 0);
        assert!(t.location_of(PageId(0)).is_none());
    }
}
