//! Parity machinery for the reliable remote memory pager.
//!
//! This crate implements the redundancy mathematics and bookkeeping of
//! Section 2.2 of the paper, independent of any I/O:
//!
//! * [`xor`] — XOR reduction and single-erasure reconstruction over
//!   [`rmp_types::Page`]s.
//! * [`buffer::ParityBuffer`] — the client-side page-sized buffer that
//!   accumulates the XOR of paged-out pages until a parity group of `S`
//!   pages is complete ("Each paged out page is XORed with a page size
//!   buffer maintained by the client ... whenever S pages have been
//!   transfered, the buffer is also transfered to a parity server").
//! * [`group::GroupTable`] — the parity-group log: which pages belong to
//!   which group, which members are *inactive* (re-paged-out elsewhere),
//!   which groups are reclaimable, and which groups garbage collection
//!   should compact.
//! * [`basic::BasicParityMap`] — the RAID-style fixed-group layout of the
//!   "Parity" policy the paper compares against.
//! * [`rs`] — the GF(2^8) Reed–Solomon codec behind the erasure-coded
//!   policy: `k` data splits plus `r` parity splits per page, any `k` of
//!   which reconstruct it (XOR is the `r = 1` special case).
//!
//! All types here are pure data structures: they decide *what* to transfer
//! and free; `rmp-core` executes those decisions against real servers.

pub mod basic;
pub mod buffer;
pub mod group;
pub mod rs;
pub mod xor;

pub use basic::BasicParityMap;
pub use buffer::{ParityBuffer, SealedGroup};
pub use group::{GcPlan, GroupMember, GroupState, GroupTable, PageLocation};
pub use rs::{RsCode, RsError};
