//! Reed–Solomon erasure coding over GF(2^8).
//!
//! The erasure-coded policy splits every page into `k` equally sized data
//! splits and derives `r` parity splits from them, so that *any* `k` of
//! the `k + r` splits reconstruct the page — the Hydra-style
//! generalisation of the paper's single-parity schemes. The code is
//! systematic: data splits are stored verbatim and the common-case read
//! path never touches the decoder.
//!
//! The field is GF(2^8) with the usual AES-adjacent reduction polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), with multiplication via
//! compile-time log/exp tables. The encoding matrix is a Vandermonde
//! matrix normalised into systematic form, which keeps every `k x k`
//! submatrix invertible (the MDS property). For `r = 1` the single parity
//! row degenerates to all-ones, i.e. the plain XOR parity of
//! [`crate::xor`] — encode and single-erasure decode take that fast path.
//!
//! ```
//! use rmp_parity::rs::RsCode;
//!
//! let code = RsCode::new(4, 2).unwrap();
//! let data: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 16]).collect();
//! let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
//! shards.extend(code.encode(&data).unwrap().into_iter().map(Some));
//! shards[0] = None; // lose one data split
//! shards[4] = None; // ... and one parity split
//! code.reconstruct(&mut shards).unwrap();
//! assert_eq!(shards[0].as_deref(), Some(&data[0][..]));
//! ```

use rmp_types::{Page, PAGE_SIZE};

/// Errors from codec construction and reconstruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RsError {
    /// `k`/`r` outside the supported range, or `k + r > 256`.
    BadGeometry(String),
    /// Shard slice count or shard lengths disagree with the geometry.
    BadShards(String),
    /// Fewer than `k` shards survive; the data is gone.
    TooFewShards {
        /// Shards still present.
        present: usize,
        /// Shards required (`k`).
        needed: usize,
    },
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::BadGeometry(s) => write!(f, "bad code geometry: {s}"),
            RsError::BadShards(s) => write!(f, "bad shards: {s}"),
            RsError::TooFewShards { present, needed } => {
                write!(
                    f,
                    "unrecoverable: {present} shards present, {needed} needed"
                )
            }
        }
    }
}

impl std::error::Error for RsError {}

// ---------------------------------------------------------------------------
// GF(2^8) arithmetic
// ---------------------------------------------------------------------------

/// `exp[i] = g^i` for generator `g = 2`, doubled so `exp[log a + log b]`
/// never needs a modular reduction; `log[exp[i]] = i`.
const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
        i += 1;
    }
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
const GF_EXP: [u8; 512] = TABLES.0;
const GF_LOG: [u8; 256] = TABLES.1;

/// Multiplies two field elements.
#[inline]
pub fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        GF_EXP[GF_LOG[a as usize] as usize + GF_LOG[b as usize] as usize]
    }
}

/// Divides `a` by `b`; panics on division by zero.
#[inline]
pub fn gf_div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "GF(2^8) division by zero");
    if a == 0 {
        0
    } else {
        GF_EXP[255 + GF_LOG[a as usize] as usize - GF_LOG[b as usize] as usize]
    }
}

/// Raises field element `a` to the power `n`.
#[inline]
fn gf_pow(a: u8, n: usize) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = (GF_LOG[a as usize] as usize * n) % 255;
    GF_EXP[l]
}

/// Accumulates `coef * src` into `dst` (the GF(2^8) multiply-add the
/// whole codec reduces to).
#[inline]
fn mul_add(dst: &mut [u8], src: &[u8], coef: u8) {
    match coef {
        0 => {}
        1 => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= s;
            }
        }
        _ => {
            let log_c = GF_LOG[coef as usize] as usize;
            for (d, s) in dst.iter_mut().zip(src) {
                if *s != 0 {
                    *d ^= GF_EXP[log_c + GF_LOG[*s as usize] as usize];
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Matrices
// ---------------------------------------------------------------------------

/// Inverts a square matrix over GF(2^8) by Gauss–Jordan elimination.
/// Returns `None` when the matrix is singular (cannot happen for the
/// submatrices this module builds; kept as a checked path anyway).
fn invert(mut m: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let n = m.len();
    let mut inv: Vec<Vec<u8>> = (0..n)
        .map(|i| (0..n).map(|j| u8::from(i == j)).collect())
        .collect();
    for col in 0..n {
        let pivot = (col..n).find(|&row| m[row][col] != 0)?;
        m.swap(col, pivot);
        inv.swap(col, pivot);
        let p = m[col][col];
        for j in 0..n {
            m[col][j] = gf_div(m[col][j], p);
            inv[col][j] = gf_div(inv[col][j], p);
        }
        for row in 0..n {
            if row == col || m[row][col] == 0 {
                continue;
            }
            let factor = m[row][col];
            for j in 0..n {
                let (a, b) = (m[col][j], inv[col][j]);
                m[row][j] ^= gf_mul(factor, a);
                inv[row][j] ^= gf_mul(factor, b);
            }
        }
    }
    Some(inv)
}

/// Multiplies `a` (n x k) by `b` (k x k).
fn mat_mul(a: &[Vec<u8>], b: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let k = b.len();
    a.iter()
        .map(|row| {
            (0..k)
                .map(|j| {
                    row.iter()
                        .enumerate()
                        .fold(0u8, |acc, (t, &v)| acc ^ gf_mul(v, b[t][j]))
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The code
// ---------------------------------------------------------------------------

/// A systematic `(k + r, k)` Reed–Solomon erasure code.
#[derive(Clone, Debug)]
pub struct RsCode {
    k: usize,
    r: usize,
    /// Full `(k + r) x k` systematic encoding matrix: the top `k` rows are
    /// the identity, the bottom `r` rows hold the parity coefficients.
    matrix: Vec<Vec<u8>>,
}

impl RsCode {
    /// Builds the code for `k` data splits and `r` parity splits.
    ///
    /// # Errors
    ///
    /// [`RsError::BadGeometry`] unless `k >= 1`, `r >= 1` and
    /// `k + r <= 256` (the field has only 256 evaluation points).
    pub fn new(k: usize, r: usize) -> Result<RsCode, RsError> {
        if k == 0 || r == 0 {
            return Err(RsError::BadGeometry(format!(
                "need k >= 1 data and r >= 1 parity splits, got k={k} r={r}"
            )));
        }
        if k + r > 256 {
            return Err(RsError::BadGeometry(format!(
                "k + r = {} exceeds the 256 points of GF(2^8)",
                k + r
            )));
        }
        // Vandermonde rows v_i = [i^0, i^1, ..., i^(k-1)] over distinct
        // evaluation points i; normalising by the inverse of the top
        // k x k block makes the code systematic while preserving the
        // all-submatrices-invertible property.
        let vandermonde: Vec<Vec<u8>> = (0..k + r)
            .map(|i| (0..k).map(|j| gf_pow(i as u8, j)).collect())
            .collect();
        let top = vandermonde[..k].to_vec();
        let inv_top = invert(top).expect("distinct-point Vandermonde is invertible");
        let mut matrix = mat_mul(&vandermonde, &inv_top);
        if r == 1 {
            // The single-parity row of any systematic MDS code is a row of
            // nonzero coefficients; pin it to all-ones so the r = 1 case
            // is exactly the XOR parity of `crate::xor`.
            matrix[k] = vec![1; k];
        }
        Ok(RsCode { k, r, matrix })
    }

    /// Data splits per page.
    pub fn data_splits(&self) -> usize {
        self.k
    }

    /// Parity splits per page.
    pub fn parity_splits(&self) -> usize {
        self.r
    }

    /// Total splits per page (`k + r`).
    pub fn total_splits(&self) -> usize {
        self.k + self.r
    }

    /// Encodes `k` equal-length data splits into `r` parity splits.
    ///
    /// # Errors
    ///
    /// [`RsError::BadShards`] when the split count or lengths disagree.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, RsError> {
        if data.len() != self.k {
            return Err(RsError::BadShards(format!(
                "expected {} data splits, got {}",
                self.k,
                data.len()
            )));
        }
        let len = data[0].len();
        if data.iter().any(|d| d.len() != len) {
            return Err(RsError::BadShards("data splits differ in length".into()));
        }
        let mut parity = vec![vec![0u8; len]; self.r];
        for (row, out) in parity.iter_mut().enumerate() {
            let coefs = &self.matrix[self.k + row];
            for (j, d) in data.iter().enumerate() {
                mul_add(out, d, coefs[j]);
            }
        }
        Ok(parity)
    }

    /// Fills in every missing shard from any `k` survivors. `shards` must
    /// hold `k + r` slots in split order (data first, then parity);
    /// `None` marks an erasure. On success every slot is `Some`.
    ///
    /// # Errors
    ///
    /// [`RsError::TooFewShards`] with fewer than `k` survivors;
    /// [`RsError::BadShards`] on length mismatches.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        if shards.len() != self.k + self.r {
            return Err(RsError::BadShards(format!(
                "expected {} shard slots, got {}",
                self.k + self.r,
                shards.len()
            )));
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(RsError::TooFewShards {
                present: present.len(),
                needed: self.k,
            });
        }
        let len = shards[present[0]].as_ref().expect("present").len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().expect("present").len() != len)
        {
            return Err(RsError::BadShards("shards differ in length".into()));
        }
        if shards.iter().all(|s| s.is_some()) {
            return Ok(());
        }

        // Recover the data splits first. If they all survive, skip the
        // inversion; with exactly one erasure under r = 1 the decode is a
        // plain XOR of the survivors (the paper's reconstruction rule).
        if shards[..self.k].iter().any(|s| s.is_none()) {
            let rows: Vec<usize> = present.iter().copied().take(self.k).collect();
            let sub: Vec<Vec<u8>> = rows.iter().map(|&i| self.matrix[i].clone()).collect();
            let inv = invert(sub).expect("any k rows of the systematic matrix are independent");
            for target in 0..self.k {
                if shards[target].is_some() {
                    continue;
                }
                // data[target] = sum over survivors of inv[target][row] * shard
                let mut out = vec![0u8; len];
                for (col, &row_idx) in rows.iter().enumerate() {
                    let shard = shards[row_idx].as_ref().expect("present");
                    mul_add(&mut out, shard, inv[target][col]);
                }
                shards[target] = Some(out);
            }
        }
        // Re-derive any missing parity from the (now complete) data.
        if shards[self.k..].iter().any(|s| s.is_none()) {
            let data: Vec<Vec<u8>> = shards[..self.k]
                .iter()
                .map(|s| s.clone().expect("recovered above"))
                .collect();
            let parity = self.encode(&data)?;
            for (slot, fresh) in shards[self.k..].iter_mut().zip(parity) {
                if slot.is_none() {
                    *slot = Some(fresh);
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Page splitting
// ---------------------------------------------------------------------------

/// Splits a page into `k` contiguous equal-size splits.
///
/// # Panics
///
/// When `k` does not divide [`PAGE_SIZE`] (config validation rejects such
/// geometries before an engine exists).
pub fn split_page(page: &Page, k: usize) -> Vec<Vec<u8>> {
    assert!(
        k >= 1 && PAGE_SIZE.is_multiple_of(k),
        "k={k} must divide PAGE_SIZE"
    );
    page.as_ref()
        .chunks(PAGE_SIZE / k)
        .map(<[u8]>::to_vec)
        .collect()
}

/// Reassembles a page from its `k` data splits.
///
/// # Panics
///
/// When the splits do not add up to exactly [`PAGE_SIZE`] bytes.
pub fn join_splits(splits: &[Vec<u8>]) -> Page {
    let mut page = Page::zeroed();
    let mut off = 0;
    for s in splits {
        page.as_mut()[off..off + s.len()].copy_from_slice(s);
        off += s.len();
    }
    assert_eq!(off, PAGE_SIZE, "splits must reassemble a full page");
    page
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xor::xor_reduce;
    use proptest::prelude::*;

    fn shard_set(code: &RsCode, data: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
        shards.extend(code.encode(data).expect("encode").into_iter().map(Some));
        shards
    }

    fn sample_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| {
                        let x = seed
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add((i * len + j) as u64);
                        (x ^ (x >> 31)) as u8
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn field_axioms_hold() {
        // Spot-check associativity/distributivity and inverses.
        for a in [1u8, 2, 3, 0x53, 0xca, 0xff] {
            assert_eq!(gf_div(a, a), 1);
            assert_eq!(gf_mul(a, 1), a);
            for b in [1u8, 7, 0x8e, 0xfe] {
                assert_eq!(gf_div(gf_mul(a, b), b), a);
                for c in [2u8, 0x1d, 0xb3] {
                    assert_eq!(
                        gf_mul(a, b ^ c),
                        gf_mul(a, b) ^ gf_mul(a, c),
                        "distributivity for {a} {b} {c}"
                    );
                    assert_eq!(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(matches!(RsCode::new(0, 1), Err(RsError::BadGeometry(_))));
        assert!(matches!(RsCode::new(4, 0), Err(RsError::BadGeometry(_))));
        assert!(matches!(RsCode::new(200, 57), Err(RsError::BadGeometry(_))));
        assert!(RsCode::new(255, 1).is_ok());
    }

    #[test]
    fn r1_parity_is_plain_xor() {
        let code = RsCode::new(4, 1).expect("code");
        let pages: Vec<Page> = (0..4).map(Page::deterministic).collect();
        let data: Vec<Vec<u8>> = pages.iter().map(|p| p.as_ref().to_vec()).collect();
        let parity = code.encode(&data).expect("encode");
        let xor = xor_reduce(pages.iter());
        assert_eq!(parity[0].as_slice(), xor.as_ref());
    }

    #[test]
    fn any_single_erasure_recovers() {
        let code = RsCode::new(4, 2).expect("code");
        let data = sample_data(4, 64, 7);
        for lost in 0..code.total_splits() {
            let mut shards = shard_set(&code, &data);
            let expected = shards[lost].clone();
            shards[lost] = None;
            code.reconstruct(&mut shards).expect("reconstruct");
            assert_eq!(shards[lost], expected, "slot {lost}");
        }
    }

    #[test]
    fn any_r_erasures_recover() {
        let code = RsCode::new(3, 3).expect("code");
        let data = sample_data(3, 32, 13);
        let n = code.total_splits();
        // Every 3-of-6 erasure pattern.
        for a in 0..n {
            for b in a + 1..n {
                for c in b + 1..n {
                    let pristine = shard_set(&code, &data);
                    let mut shards = pristine.clone();
                    for &i in &[a, b, c] {
                        shards[i] = None;
                    }
                    code.reconstruct(&mut shards).expect("reconstruct");
                    assert_eq!(shards, pristine, "pattern ({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_is_detected() {
        let code = RsCode::new(4, 2).expect("code");
        let mut shards = shard_set(&code, &sample_data(4, 16, 3));
        for shard in shards.iter_mut().take(3) {
            *shard = None;
        }
        assert_eq!(
            code.reconstruct(&mut shards),
            Err(RsError::TooFewShards {
                present: 3,
                needed: 4
            })
        );
    }

    #[test]
    fn split_and_join_round_trip() {
        let page = Page::deterministic(99);
        for k in [1usize, 2, 4, 8, 16] {
            let splits = split_page(&page, k);
            assert_eq!(splits.len(), k);
            assert!(splits.iter().all(|s| s.len() == PAGE_SIZE / k));
            assert_eq!(join_splits(&splits), page);
        }
    }

    #[test]
    fn full_page_pipeline_survives_r_erasures() {
        let (k, r) = (4, 2);
        let code = RsCode::new(k, r).expect("code");
        let page = Page::deterministic(5);
        let data = split_page(&page, k);
        let mut shards = shard_set(&code, &data);
        shards[1] = None;
        shards[4] = None;
        code.reconstruct(&mut shards).expect("reconstruct");
        let data_back: Vec<Vec<u8>> = shards[..k]
            .iter()
            .map(|s| s.clone().expect("filled"))
            .collect();
        assert_eq!(join_splits(&data_back), page);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Encode/decode round-trips over random (k, r, erasure pattern).
        #[test]
        fn roundtrip_random_geometry_and_erasures(
            k in 1usize..9,
            r in 1usize..5,
            seed in any::<u64>(),
        ) {
            let code = RsCode::new(k, r).expect("geometry in range");
            let data = sample_data(k, 48, seed);
            let pristine = shard_set(&code, &data);
            let mut shards = pristine.clone();
            // Derive a pseudo-random erasure pattern of exactly r slots
            // from the seed.
            let n = k + r;
            let mut lost = Vec::new();
            let mut x = seed | 1;
            while lost.len() < r {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let slot = (x >> 33) as usize % n;
                if !lost.contains(&slot) {
                    lost.push(slot);
                }
            }
            for &slot in &lost {
                shards[slot] = None;
            }
            code.reconstruct(&mut shards).expect("r erasures recover");
            prop_assert_eq!(shards, pristine);
        }
    }
}
