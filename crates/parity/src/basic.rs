//! The RAID-style fixed-group "Parity" policy (Section 2.2).
//!
//! With `S` data servers, page `(i, j)` is the `j`th page on server `i`,
//! and parity page `j` is the XOR of the `j`th page of every server. All
//! `j`th pages form one *parity group*. Unlike parity logging, a page is
//! bound to its `(server, slot)` for life: updating it means sending the
//! new contents to its server, getting back `old XOR new`, and folding
//! that delta into the parity page — two page transfers per pageout.

use std::collections::HashMap;

use rmp_types::{PageId, Result, RmpError, ServerId, StoreKey};

/// The fixed location a logical page is bound to under basic parity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BasicSlot {
    /// Data server holding the page.
    pub server: ServerId,
    /// Storage key on the data server (the stripe slot index).
    pub key: StoreKey,
    /// Storage key of the group's parity page on the parity server.
    pub parity_key: StoreKey,
    /// Stripe slot (`j`) identifying the parity group.
    pub slot: u64,
}

/// Recovery instructions for one page lost with a crashed data server.
#[derive(Clone, Debug)]
pub struct BasicRecovery {
    /// Logical page to rebuild.
    pub page_id: PageId,
    /// Where the lost copy lived.
    pub lost: BasicSlot,
    /// Surviving same-slot pages to fetch (`(server, key)`).
    pub fetch: Vec<(ServerId, StoreKey)>,
    /// The parity page to fetch (`(server, key)`).
    pub parity: (ServerId, StoreKey),
}

/// Client-side layout map for the basic parity policy.
///
/// # Examples
///
/// ```
/// use rmp_parity::BasicParityMap;
/// use rmp_types::{PageId, ServerId};
///
/// let mut map = BasicParityMap::new(
///     vec![ServerId(0), ServerId(1), ServerId(2)],
///     ServerId(9),
/// ).unwrap();
/// let slot = map.assign(PageId(7));
/// assert_eq!(map.assign(PageId(7)), slot, "assignment is stable");
/// ```
#[derive(Debug)]
pub struct BasicParityMap {
    servers: Vec<ServerId>,
    parity_server: ServerId,
    assignments: HashMap<PageId, BasicSlot>,
    /// Next free slot index per data server (index parallel to `servers`).
    next_slot: Vec<u64>,
    /// Round-robin cursor for new assignments.
    cursor: usize,
    /// Occupancy per (slot, server index) so recovery knows which
    /// same-slot pages exist.
    occupancy: HashMap<u64, Vec<Option<PageId>>>,
}

impl BasicParityMap {
    /// Creates a map over `servers` data servers plus a parity server.
    ///
    /// # Errors
    ///
    /// Returns [`RmpError::Config`] when `servers` is empty or the parity
    /// server also appears as a data server (a single crash would then
    /// take out both a member and its parity).
    pub fn new(servers: Vec<ServerId>, parity_server: ServerId) -> Result<Self> {
        if servers.is_empty() {
            return Err(RmpError::Config("basic parity needs data servers".into()));
        }
        if servers.contains(&parity_server) {
            return Err(RmpError::Config(
                "parity server must be distinct from data servers".into(),
            ));
        }
        let n = servers.len();
        Ok(BasicParityMap {
            servers,
            parity_server,
            assignments: HashMap::new(),
            next_slot: vec![0; n],
            cursor: 0,
            occupancy: HashMap::new(),
        })
    }

    /// Number of data servers (`S`).
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The parity server.
    pub fn parity_server(&self) -> ServerId {
        self.parity_server
    }

    /// Returns the page's slot, assigning a fresh one on first use.
    ///
    /// New pages go round-robin across data servers, each taking the next
    /// free stripe slot on its server.
    pub fn assign(&mut self, page_id: PageId) -> BasicSlot {
        if let Some(&slot) = self.assignments.get(&page_id) {
            return slot;
        }
        let idx = self.cursor;
        self.cursor = (self.cursor + 1) % self.servers.len();
        let j = self.next_slot[idx];
        self.next_slot[idx] += 1;
        let slot = BasicSlot {
            server: self.servers[idx],
            key: StoreKey(j),
            parity_key: StoreKey(j),
            slot: j,
        };
        self.assignments.insert(page_id, slot);
        let row = self
            .occupancy
            .entry(j)
            .or_insert_with(|| vec![None; self.servers.len()]);
        row[idx] = Some(page_id);
        slot
    }

    /// Returns the page's slot without assigning.
    pub fn location(&self, page_id: PageId) -> Option<BasicSlot> {
        self.assignments.get(&page_id).copied()
    }

    /// Releases a page's slot.
    ///
    /// The caller must first cancel the page out of its parity (fetch the
    /// old contents and XOR them into the parity page) — the map only does
    /// bookkeeping. Returns the freed slot, or `None` if unassigned.
    pub fn free(&mut self, page_id: PageId) -> Option<BasicSlot> {
        let slot = self.assignments.remove(&page_id)?;
        let idx = self
            .servers
            .iter()
            .position(|&s| s == slot.server)
            .expect("assigned slot references known server");
        if let Some(row) = self.occupancy.get_mut(&slot.slot) {
            row[idx] = None;
        }
        Some(slot)
    }

    /// Number of assigned pages.
    pub fn assigned_pages(&self) -> usize {
        self.assignments.len()
    }

    /// Builds recovery plans for a crash of `server`.
    ///
    /// # Errors
    ///
    /// Returns [`RmpError::Unrecoverable`] when `server` is unknown (it is
    /// neither a data nor the parity server); a parity-server crash yields
    /// an empty member list — all data pages survive, and the caller should
    /// recompute parity pages from the members (see
    /// [`BasicParityMap::parity_rebuild_plan`]).
    pub fn recovery_plan(&self, server: ServerId) -> Result<Vec<BasicRecovery>> {
        if server == self.parity_server {
            return Ok(Vec::new());
        }
        let idx = self
            .servers
            .iter()
            .position(|&s| s == server)
            .ok_or_else(|| RmpError::Unrecoverable(format!("unknown server {server}")))?;
        let mut plans = Vec::new();
        for (&j, row) in &self.occupancy {
            let Some(page_id) = row[idx] else { continue };
            let fetch: Vec<(ServerId, StoreKey)> = row
                .iter()
                .enumerate()
                .filter(|&(i, occ)| i != idx && occ.is_some())
                .map(|(i, _)| (self.servers[i], StoreKey(j)))
                .collect();
            plans.push(BasicRecovery {
                page_id,
                lost: self.assignments[&page_id],
                fetch,
                parity: (self.parity_server, StoreKey(j)),
            });
        }
        plans.sort_by_key(|p| p.lost.slot);
        Ok(plans)
    }

    /// Lists, per stripe slot, the member pages whose XOR re-creates the
    /// parity page — used after a parity-server crash.
    pub fn parity_rebuild_plan(&self) -> Vec<(StoreKey, Vec<(ServerId, StoreKey)>)> {
        let mut plans: Vec<_> = self
            .occupancy
            .iter()
            .filter_map(|(&j, row)| {
                let members: Vec<(ServerId, StoreKey)> = row
                    .iter()
                    .enumerate()
                    .filter(|(_, occ)| occ.is_some())
                    .map(|(i, _)| (self.servers[i], StoreKey(j)))
                    .collect();
                if members.is_empty() {
                    None
                } else {
                    Some((StoreKey(j), members))
                }
            })
            .collect();
        plans.sort_by_key(|(k, _)| *k);
        plans
    }

    /// Rebinds a recovered page to a new data server (after its original
    /// server crashed and the page was reconstructed elsewhere).
    ///
    /// # Errors
    ///
    /// Returns [`RmpError::Config`] when `new_server` is not a data server
    /// of this map.
    pub fn rebind(&mut self, page_id: PageId, new_server: ServerId) -> Result<BasicSlot> {
        let new_idx = self
            .servers
            .iter()
            .position(|&s| s == new_server)
            .ok_or_else(|| RmpError::Config(format!("{new_server} is not a data server")))?;
        let old = self
            .assignments
            .get(&page_id)
            .copied()
            .ok_or(RmpError::PageNotFound(page_id))?;
        let old_idx = self
            .servers
            .iter()
            .position(|&s| s == old.server)
            .expect("assigned slot references known server");
        let row = self
            .occupancy
            .get_mut(&old.slot)
            .expect("assigned slot has occupancy row");
        if row[new_idx].is_some() {
            return Err(RmpError::Config(format!(
                "slot {} on {new_server} already occupied",
                old.slot
            )));
        }
        row[old_idx] = None;
        row[new_idx] = Some(page_id);
        let slot = BasicSlot {
            server: new_server,
            ..old
        };
        self.assignments.insert(page_id, slot);
        Ok(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map3() -> BasicParityMap {
        BasicParityMap::new(vec![ServerId(0), ServerId(1), ServerId(2)], ServerId(9))
            .expect("valid config")
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(BasicParityMap::new(vec![], ServerId(9)).is_err());
        assert!(BasicParityMap::new(vec![ServerId(1)], ServerId(1)).is_err());
    }

    #[test]
    fn assignment_round_robins_servers() {
        let mut m = map3();
        let a = m.assign(PageId(0));
        let b = m.assign(PageId(1));
        let c = m.assign(PageId(2));
        let d = m.assign(PageId(3));
        assert_eq!(a.server, ServerId(0));
        assert_eq!(b.server, ServerId(1));
        assert_eq!(c.server, ServerId(2));
        assert_eq!(d.server, ServerId(0));
        // Same stripe slot for the first wave, next slot for the wrap.
        assert_eq!(a.slot, 0);
        assert_eq!(b.slot, 0);
        assert_eq!(d.slot, 1);
    }

    #[test]
    fn assignment_is_stable() {
        let mut m = map3();
        let first = m.assign(PageId(5));
        for _ in 0..3 {
            assert_eq!(m.assign(PageId(5)), first);
        }
        assert_eq!(m.assigned_pages(), 1);
    }

    #[test]
    fn recovery_plan_lists_surviving_members_and_parity() {
        let mut m = map3();
        for p in 0..6 {
            m.assign(PageId(p));
        }
        let plans = m.recovery_plan(ServerId(1)).expect("recoverable");
        assert_eq!(plans.len(), 2, "pages 1 and 4 lived on srv1");
        for plan in &plans {
            assert_eq!(plan.lost.server, ServerId(1));
            assert_eq!(plan.fetch.len(), 2, "two surviving members per stripe");
            assert_eq!(plan.parity.0, ServerId(9));
            assert_eq!(plan.parity.1, plan.lost.parity_key);
        }
    }

    #[test]
    fn recovery_plan_skips_empty_slots() {
        let mut m = map3();
        m.assign(PageId(0)); // Only server 0, slot 0 in use.
        let plans = m.recovery_plan(ServerId(0)).expect("recoverable");
        assert_eq!(plans.len(), 1);
        assert!(plans[0].fetch.is_empty(), "no surviving members");
        let none = m.recovery_plan(ServerId(2)).expect("recoverable");
        assert!(none.is_empty());
    }

    #[test]
    fn parity_crash_yields_rebuild_plan() {
        let mut m = map3();
        for p in 0..4 {
            m.assign(PageId(p));
        }
        assert!(m.recovery_plan(ServerId(9)).expect("ok").is_empty());
        let rebuilds = m.parity_rebuild_plan();
        assert_eq!(rebuilds.len(), 2, "stripe slots 0 and 1 in use");
        assert_eq!(rebuilds[0].1.len(), 3);
        assert_eq!(rebuilds[1].1.len(), 1);
    }

    #[test]
    fn unknown_server_is_error() {
        let m = map3();
        assert!(m.recovery_plan(ServerId(42)).is_err());
    }

    #[test]
    fn free_clears_occupancy() {
        let mut m = map3();
        m.assign(PageId(0));
        m.assign(PageId(1));
        let slot = m.free(PageId(0)).expect("assigned");
        assert_eq!(slot.server, ServerId(0));
        assert!(m.free(PageId(0)).is_none(), "idempotent");
        let plans = m.recovery_plan(ServerId(0)).expect("ok");
        assert!(plans.is_empty(), "freed page no longer recovered");
    }

    #[test]
    fn rebind_moves_page_between_servers() {
        let mut m = map3();
        m.assign(PageId(0)); // srv0 slot0
        m.assign(PageId(1)); // srv1 slot0
        let moved = m.rebind(PageId(0), ServerId(2)).expect("rebinds");
        assert_eq!(moved.server, ServerId(2));
        assert_eq!(moved.slot, 0);
        // Slot 0 on server 1 is taken; rebinding page 0 onto it must fail.
        assert!(m.rebind(PageId(0), ServerId(1)).is_err());
        // Rebinding to a non-data server fails.
        assert!(m.rebind(PageId(0), ServerId(9)).is_err());
    }
}
