//! Transfer and fault statistics.

use std::ops::{Add, AddAssign};

/// Counts of pager activity, accumulated per run.
///
/// The paper's Figure 4 extrapolation multiplies the number of page
/// transfers by per-transfer costs; these counters are the inputs to that
/// model. Every policy engine updates them as it services requests.
///
/// # Examples
///
/// ```
/// use rmp_types::TransferStats;
///
/// let stats = TransferStats {
///     pageouts: 4,
///     net_data_transfers: 4,
///     net_parity_transfers: 1,
///     ..TransferStats::default()
/// };
/// // Parity logging with S = 4: one parity transfer per 4 pageouts.
/// assert_eq!(stats.outbound_transfers_per_pageout(), 1.25);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Pagein requests serviced (kernel reads from the paging device).
    pub pageins: u64,
    /// Pageout requests serviced (kernel writes to the paging device).
    pub pageouts: u64,
    /// Data pages shipped to remote servers (includes mirror copies and
    /// re-sent pages during migration).
    pub net_data_transfers: u64,
    /// Parity pages shipped to the parity server.
    pub net_parity_transfers: u64,
    /// Pages fetched from remote servers.
    pub net_fetches: u64,
    /// Pages written to the local disk.
    pub disk_writes: u64,
    /// Pages read from the local disk.
    pub disk_reads: u64,
    /// Parity groups reclaimed because all members became inactive.
    pub groups_reclaimed: u64,
    /// Garbage-collection passes executed.
    pub gc_passes: u64,
    /// Pages migrated between servers in response to load advisories.
    pub migrations: u64,
    /// Pageins served by reconstructing the requested page from
    /// redundancy (mirror copy or parity group) while its holder was
    /// down, instead of waiting for a full rebuild.
    pub degraded_reads: u64,
    /// Bounded recovery steps executed by the incremental recovery
    /// driver (each step rebuilds at most `recovery_page_budget` pages).
    pub recovery_steps: u64,
    /// Page payloads that failed their end-to-end checksum.
    pub checksum_failures: u64,
}

impl TransferStats {
    /// Total network page transfers in either direction — the quantity the
    /// Figure 4 formula multiplies by `pptime`.
    pub fn total_net_transfers(&self) -> u64 {
        self.net_data_transfers + self.net_parity_transfers + self.net_fetches
    }

    /// Total local disk operations.
    pub fn total_disk_ops(&self) -> u64 {
        self.disk_reads + self.disk_writes
    }

    /// Network transfers per pageout, the policy-overhead metric of
    /// Section 2.2. Returns 0 when no pageouts occurred.
    pub fn outbound_transfers_per_pageout(&self) -> f64 {
        if self.pageouts == 0 {
            return 0.0;
        }
        (self.net_data_transfers + self.net_parity_transfers) as f64 / self.pageouts as f64
    }
}

impl Add for TransferStats {
    type Output = TransferStats;

    fn add(mut self, rhs: TransferStats) -> TransferStats {
        self += rhs;
        self
    }
}

impl AddAssign for TransferStats {
    fn add_assign(&mut self, rhs: TransferStats) {
        self.pageins += rhs.pageins;
        self.pageouts += rhs.pageouts;
        self.net_data_transfers += rhs.net_data_transfers;
        self.net_parity_transfers += rhs.net_parity_transfers;
        self.net_fetches += rhs.net_fetches;
        self.disk_writes += rhs.disk_writes;
        self.disk_reads += rhs.disk_reads;
        self.groups_reclaimed += rhs.groups_reclaimed;
        self.gc_passes += rhs.gc_passes;
        self.migrations += rhs.migrations;
        self.degraded_reads += rhs.degraded_reads;
        self.recovery_steps += rhs.recovery_steps;
        self.checksum_failures += rhs.checksum_failures;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let s = TransferStats {
            net_data_transfers: 3,
            net_parity_transfers: 1,
            net_fetches: 2,
            disk_reads: 4,
            disk_writes: 5,
            ..Default::default()
        };
        assert_eq!(s.total_net_transfers(), 6);
        assert_eq!(s.total_disk_ops(), 9);
    }

    #[test]
    fn transfers_per_pageout_handles_zero() {
        assert_eq!(
            TransferStats::default().outbound_transfers_per_pageout(),
            0.0
        );
        let s = TransferStats {
            pageouts: 4,
            net_data_transfers: 4,
            net_parity_transfers: 1,
            ..Default::default()
        };
        assert!((s.outbound_transfers_per_pageout() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn addition_accumulates_all_fields() {
        let a = TransferStats {
            pageins: 1,
            pageouts: 2,
            net_data_transfers: 3,
            net_parity_transfers: 4,
            net_fetches: 5,
            disk_writes: 6,
            disk_reads: 7,
            groups_reclaimed: 8,
            gc_passes: 9,
            migrations: 10,
            degraded_reads: 11,
            recovery_steps: 12,
            checksum_failures: 13,
        };
        let sum = a + a;
        assert_eq!(sum.pageins, 2);
        assert_eq!(sum.migrations, 20);
        assert_eq!(sum.degraded_reads, 22);
        assert_eq!(sum.recovery_steps, 24);
        assert_eq!(sum.checksum_failures, 26);
        assert_eq!(sum.total_net_transfers(), 24);
    }
}
