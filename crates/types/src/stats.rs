//! Transfer and fault statistics.

use std::ops::{Add, AddAssign};

/// Counts of pager activity, accumulated per run.
///
/// The paper's Figure 4 extrapolation multiplies the number of page
/// transfers by per-transfer costs; these counters are the inputs to that
/// model. Every policy engine updates them as it services requests.
///
/// # Examples
///
/// ```
/// use rmp_types::TransferStats;
///
/// let stats = TransferStats {
///     pageouts: 4,
///     net_data_transfers: 4,
///     net_parity_transfers: 1,
///     ..TransferStats::default()
/// };
/// // Parity logging with S = 4: one parity transfer per 4 pageouts.
/// assert_eq!(stats.outbound_transfers_per_pageout(), 1.25);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Pagein requests serviced (kernel reads from the paging device).
    pub pageins: u64,
    /// Pageout requests serviced (kernel writes to the paging device).
    pub pageouts: u64,
    /// Data pages shipped to remote servers (includes mirror copies and
    /// re-sent pages during migration).
    pub net_data_transfers: u64,
    /// Parity pages shipped to the parity server.
    pub net_parity_transfers: u64,
    /// Pages fetched from remote servers.
    pub net_fetches: u64,
    /// Pages written to the local disk.
    pub disk_writes: u64,
    /// Pages read from the local disk.
    pub disk_reads: u64,
    /// Parity groups reclaimed because all members became inactive.
    pub groups_reclaimed: u64,
    /// Garbage-collection passes executed.
    pub gc_passes: u64,
    /// Pages migrated between servers in response to load advisories.
    pub migrations: u64,
    /// Pageins served by reconstructing the requested page from
    /// redundancy (mirror copy or parity group) while its holder was
    /// down, instead of waiting for a full rebuild.
    pub degraded_reads: u64,
    /// Bounded recovery steps executed by the incremental recovery
    /// driver (each step rebuilds at most `recovery_page_budget` pages).
    pub recovery_steps: u64,
    /// Page payloads that failed their end-to-end checksum.
    pub checksum_failures: u64,
}

impl TransferStats {
    /// Total network page transfers in either direction — the quantity the
    /// Figure 4 formula multiplies by `pptime`.
    pub fn total_net_transfers(&self) -> u64 {
        self.net_data_transfers + self.net_parity_transfers + self.net_fetches
    }

    /// Total local disk operations.
    pub fn total_disk_ops(&self) -> u64 {
        self.disk_reads + self.disk_writes
    }

    /// Network transfers per pageout, the policy-overhead metric of
    /// Section 2.2. Returns 0 when no pageouts occurred — so the ratio is
    /// safe on empty stats and on merged stats whose pageout count is
    /// still zero (e.g. summing runs that only serviced pageins).
    pub fn outbound_transfers_per_pageout(&self) -> f64 {
        if self.pageouts == 0 {
            return 0.0;
        }
        (self.net_data_transfers + self.net_parity_transfers) as f64 / self.pageouts as f64
    }

    /// Merges `rhs` into `self` with saturating arithmetic.
    ///
    /// `Add`/`AddAssign` delegate here, so merging long-run aggregates can
    /// never wrap a counter back toward zero and silently corrupt the
    /// per-pageout ratios derived from it.
    pub fn saturating_merge(&mut self, rhs: &TransferStats) {
        self.pageins = self.pageins.saturating_add(rhs.pageins);
        self.pageouts = self.pageouts.saturating_add(rhs.pageouts);
        self.net_data_transfers = self
            .net_data_transfers
            .saturating_add(rhs.net_data_transfers);
        self.net_parity_transfers = self
            .net_parity_transfers
            .saturating_add(rhs.net_parity_transfers);
        self.net_fetches = self.net_fetches.saturating_add(rhs.net_fetches);
        self.disk_writes = self.disk_writes.saturating_add(rhs.disk_writes);
        self.disk_reads = self.disk_reads.saturating_add(rhs.disk_reads);
        self.groups_reclaimed = self.groups_reclaimed.saturating_add(rhs.groups_reclaimed);
        self.gc_passes = self.gc_passes.saturating_add(rhs.gc_passes);
        self.migrations = self.migrations.saturating_add(rhs.migrations);
        self.degraded_reads = self.degraded_reads.saturating_add(rhs.degraded_reads);
        self.recovery_steps = self.recovery_steps.saturating_add(rhs.recovery_steps);
        self.checksum_failures = self.checksum_failures.saturating_add(rhs.checksum_failures);
    }

    /// Serializes the counters as a JSON object, in the same hand-rolled
    /// style as [`crate::metrics::MetricsRegistry::snapshot_json`], so the
    /// pager can embed its engine-level stats next to runtime metrics.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"pageins\": {}, \"pageouts\": {}, \"net_data_transfers\": {}, \
             \"net_parity_transfers\": {}, \"net_fetches\": {}, \"disk_writes\": {}, \
             \"disk_reads\": {}, \"groups_reclaimed\": {}, \"gc_passes\": {}, \
             \"migrations\": {}, \"degraded_reads\": {}, \"recovery_steps\": {}, \
             \"checksum_failures\": {}, \"outbound_transfers_per_pageout\": {:.4}}}",
            self.pageins,
            self.pageouts,
            self.net_data_transfers,
            self.net_parity_transfers,
            self.net_fetches,
            self.disk_writes,
            self.disk_reads,
            self.groups_reclaimed,
            self.gc_passes,
            self.migrations,
            self.degraded_reads,
            self.recovery_steps,
            self.checksum_failures,
            self.outbound_transfers_per_pageout(),
        )
    }
}

impl Add for TransferStats {
    type Output = TransferStats;

    fn add(mut self, rhs: TransferStats) -> TransferStats {
        self += rhs;
        self
    }
}

impl AddAssign for TransferStats {
    fn add_assign(&mut self, rhs: TransferStats) {
        self.saturating_merge(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let s = TransferStats {
            net_data_transfers: 3,
            net_parity_transfers: 1,
            net_fetches: 2,
            disk_reads: 4,
            disk_writes: 5,
            ..Default::default()
        };
        assert_eq!(s.total_net_transfers(), 6);
        assert_eq!(s.total_disk_ops(), 9);
    }

    #[test]
    fn transfers_per_pageout_handles_zero() {
        assert_eq!(
            TransferStats::default().outbound_transfers_per_pageout(),
            0.0
        );
        let s = TransferStats {
            pageouts: 4,
            net_data_transfers: 4,
            net_parity_transfers: 1,
            ..Default::default()
        };
        assert!((s.outbound_transfers_per_pageout() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn addition_accumulates_all_fields() {
        let a = TransferStats {
            pageins: 1,
            pageouts: 2,
            net_data_transfers: 3,
            net_parity_transfers: 4,
            net_fetches: 5,
            disk_writes: 6,
            disk_reads: 7,
            groups_reclaimed: 8,
            gc_passes: 9,
            migrations: 10,
            degraded_reads: 11,
            recovery_steps: 12,
            checksum_failures: 13,
        };
        let sum = a + a;
        assert_eq!(sum.pageins, 2);
        assert_eq!(sum.migrations, 20);
        assert_eq!(sum.degraded_reads, 22);
        assert_eq!(sum.recovery_steps, 24);
        assert_eq!(sum.checksum_failures, 26);
        assert_eq!(sum.total_net_transfers(), 24);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let near_max = TransferStats {
            net_data_transfers: u64::MAX - 1,
            pageouts: u64::MAX,
            ..Default::default()
        };
        let more = TransferStats {
            net_data_transfers: 10,
            pageouts: 10,
            ..Default::default()
        };
        let sum = near_max + more;
        assert_eq!(sum.net_data_transfers, u64::MAX);
        assert_eq!(sum.pageouts, u64::MAX);
        // The derived ratio stays finite and sane after saturation.
        assert!(sum.outbound_transfers_per_pageout() <= 1.0 + 1e-12);
    }

    #[test]
    fn merged_zero_pageout_ratio_is_zero() {
        // The audit case from the merge path: summing runs that serviced
        // only pageins must not divide by the zero pageout count.
        let a = TransferStats {
            pageins: 50,
            net_fetches: 50,
            ..Default::default()
        };
        let b = TransferStats {
            pageins: 30,
            net_fetches: 30,
            ..Default::default()
        };
        let merged = a + b;
        assert_eq!(merged.pageouts, 0);
        assert_eq!(merged.outbound_transfers_per_pageout(), 0.0);
    }

    #[test]
    fn json_includes_every_counter_and_the_ratio() {
        let s = TransferStats {
            pageouts: 4,
            net_data_transfers: 4,
            net_parity_transfers: 1,
            degraded_reads: 2,
            ..Default::default()
        };
        let json = s.to_json();
        assert!(json.contains("\"pageouts\": 4"));
        assert!(json.contains("\"degraded_reads\": 2"));
        assert!(json.contains("\"outbound_transfers_per_pageout\": 1.2500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
