//! Reliability policies explored by the paper.

use std::fmt;
use std::str::FromStr;

/// The reliability policy under which the pager operates.
///
/// Section 2.2 of the paper designs three redundancy policies (mirroring,
/// basic parity, parity logging) and evaluates them against a no-reliability
/// baseline, local-disk paging, and a write-through hybrid (Section 4.7).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Policy {
    /// Pages live on exactly one remote server; a server crash loses them.
    NoReliability,
    /// Every pageout is sent to a primary and a mirror server (2 transfers,
    /// 2x memory).
    Mirroring,
    /// RAID-style parity with fixed groups: the client sends the page to its
    /// server, which XORs old and new contents and forwards the delta to the
    /// parity server (2 transfers, 1 + 1/S memory).
    BasicParity,
    /// The paper's novel policy: the client XORs pageouts into a local
    /// parity buffer and ships the buffer to a parity server every S pages
    /// (1 + 1/S transfers, ~1.1x memory with overflow).
    ParityLogging,
    /// Remote memory acts as a write-through cache of the local swap disk:
    /// reads come from memory, every write also goes to disk (Section 4.7).
    WriteThrough,
    /// Traditional local-disk paging; the baseline the paper beats.
    DiskOnly,
    /// Hydra-style k+r erasure coding: each page is split into `k` data
    /// splits plus `r` Reed–Solomon parity splits placed on `k + r`
    /// distinct servers, so any `k` surviving splits reconstruct it. The
    /// modern endpoint of the paper's parity idea: sub-page placement
    /// with tunable redundancy.
    ErasureCoded,
}

impl Policy {
    /// All policies, in the order the paper's figures present them.
    pub const ALL: [Policy; 7] = [
        Policy::NoReliability,
        Policy::ParityLogging,
        Policy::Mirroring,
        Policy::DiskOnly,
        Policy::WriteThrough,
        Policy::BasicParity,
        Policy::ErasureCoded,
    ];

    /// Returns `true` when the policy keeps enough redundancy to survive a
    /// single server crash.
    pub fn survives_single_crash(self) -> bool {
        match self {
            Policy::NoReliability => false,
            Policy::Mirroring
            | Policy::BasicParity
            | Policy::ParityLogging
            | Policy::WriteThrough
            | Policy::ErasureCoded => true,
            // Disk-only paging involves no remote servers at all.
            Policy::DiskOnly => true,
        }
    }

    /// Network page transfers needed per pageout, given `s` data servers.
    ///
    /// This is the analytical overhead Section 2.2 derives: 1 for
    /// no-reliability, 2 for mirroring and basic parity, `1 + 1/s` for
    /// parity logging, 1 for write-through (the disk write is not a network
    /// transfer) and 0 for disk-only. Erasure coding moves `(k + r)/k`
    /// page-equivalents of split traffic per pageout; here `s` plays the
    /// role of `k` with the single-parity `r = 1` default — the full
    /// `k + r` form lives in the engine, keyed off the config knobs.
    pub fn transfers_per_pageout(self, s: usize) -> f64 {
        match self {
            Policy::NoReliability | Policy::WriteThrough => 1.0,
            Policy::Mirroring | Policy::BasicParity => 2.0,
            Policy::ParityLogging | Policy::ErasureCoded => 1.0 + 1.0 / s as f64,
            Policy::DiskOnly => 0.0,
        }
    }

    /// Remote-memory overhead factor relative to the paged-out data, given
    /// `s` data servers and the configured `overflow` fraction for parity
    /// logging (the paper uses 0.10).
    pub fn memory_overhead(self, s: usize, overflow: f64) -> f64 {
        match self {
            Policy::NoReliability | Policy::WriteThrough => 1.0,
            Policy::Mirroring => 2.0,
            Policy::BasicParity => 1.0 + 1.0 / s as f64,
            Policy::ParityLogging => (1.0 + 1.0 / s as f64) * (1.0 + overflow),
            // `(k + r)/k` with the r = 1 default; splits are stored
            // verbatim, so there is no overflow buffer to account for.
            Policy::ErasureCoded => 1.0 + 1.0 / s as f64,
            Policy::DiskOnly => 0.0,
        }
    }

    /// Short label used in figure output, matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Policy::NoReliability => "No reliability",
            Policy::Mirroring => "Mirroring",
            Policy::BasicParity => "Basic parity",
            Policy::ParityLogging => "Parity logging",
            Policy::WriteThrough => "Write through",
            Policy::DiskOnly => "Disk",
            Policy::ErasureCoded => "Erasure coded",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Policy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(['-', '_'], " ").as_str() {
            "no reliability" | "noreliability" | "none" => Ok(Policy::NoReliability),
            "mirroring" | "mirror" => Ok(Policy::Mirroring),
            "basic parity" | "parity" => Ok(Policy::BasicParity),
            "parity logging" | "paritylogging" | "log" => Ok(Policy::ParityLogging),
            "write through" | "writethrough" => Ok(Policy::WriteThrough),
            "disk" | "diskonly" | "disk only" => Ok(Policy::DiskOnly),
            "erasure coded" | "erasurecoded" | "erasure" | "ec" | "rs" => Ok(Policy::ErasureCoded),
            other => Err(format!("unknown policy: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_overheads_match_paper() {
        assert_eq!(Policy::NoReliability.transfers_per_pageout(4), 1.0);
        assert_eq!(Policy::Mirroring.transfers_per_pageout(4), 2.0);
        assert_eq!(Policy::BasicParity.transfers_per_pageout(4), 2.0);
        assert_eq!(Policy::ParityLogging.transfers_per_pageout(4), 1.25);
        assert_eq!(Policy::DiskOnly.transfers_per_pageout(4), 0.0);
    }

    #[test]
    fn memory_overheads_match_paper() {
        assert_eq!(Policy::Mirroring.memory_overhead(4, 0.1), 2.0);
        assert_eq!(Policy::BasicParity.memory_overhead(4, 0.1), 1.25);
        let pl = Policy::ParityLogging.memory_overhead(4, 0.1);
        assert!((pl - 1.375).abs() < 1e-12);
    }

    #[test]
    fn crash_survival() {
        assert!(!Policy::NoReliability.survives_single_crash());
        assert!(Policy::ParityLogging.survives_single_crash());
        assert!(Policy::Mirroring.survives_single_crash());
        assert!(Policy::WriteThrough.survives_single_crash());
    }

    #[test]
    fn parse_round_trips() {
        for p in Policy::ALL {
            let parsed: Policy = p.label().parse().expect("label parses");
            assert_eq!(parsed, p);
        }
        assert!("bogus".parse::<Policy>().is_err());
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(
            "parity-logging".parse::<Policy>().unwrap(),
            Policy::ParityLogging
        );
        assert_eq!("none".parse::<Policy>().unwrap(), Policy::NoReliability);
        assert_eq!("disk_only".parse::<Policy>().unwrap(), Policy::DiskOnly);
    }

    #[test]
    fn erasure_coded_matches_single_parity_closed_form() {
        assert!(Policy::ErasureCoded.survives_single_crash());
        assert_eq!(Policy::ErasureCoded.transfers_per_pageout(4), 1.25);
        assert_eq!(Policy::ErasureCoded.memory_overhead(4, 0.1), 1.25);
        assert_eq!("ec".parse::<Policy>().unwrap(), Policy::ErasureCoded);
        assert_eq!(
            "erasure-coded".parse::<Policy>().unwrap(),
            Policy::ErasureCoded
        );
    }

    #[test]
    fn parity_logging_beats_mirroring_on_transfers() {
        for s in 2..16 {
            assert!(
                Policy::ParityLogging.transfers_per_pageout(s)
                    < Policy::Mirroring.transfers_per_pageout(s)
            );
        }
    }
}
