//! Shared types for the Reliable Remote Memory Pager (RMP).
//!
//! This crate defines the vocabulary used by every other crate in the
//! workspace: pages and page identifiers, server identifiers, reliability
//! policies, error types, transfer statistics, and the 1996-era hardware
//! constants (DEC RZ55 disk, 10 Mbit/s Ethernet, DEC-Alpha 3000/300) used by
//! the performance models that regenerate the paper's figures.
//!
//! The paper reproduced is *"Implementation of a Reliable Remote Memory
//! Pager"*, Markatos & Dramitinos, USENIX Technical Conference 1996.

pub mod config;
pub mod error;
pub mod hw;
pub mod ids;
pub mod metrics;
pub mod page;
pub mod policy;
pub mod stats;

pub use config::{PagerConfig, RetryPolicy, TransportConfig};
pub use error::{ErrorCode, Result, RmpError};
pub use hw::Hw1996;
pub use ids::{ClientId, GroupId, PageId, ServerId, StoreKey};
pub use metrics::{
    Counter, EventKind, EventRing, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, TraceEvent,
};
pub use page::{Page, PAGE_SIZE};
pub use policy::Policy;
pub use stats::TransferStats;
