//! Identifier newtypes used across the pager.

use std::fmt;

/// Identifies a page (swap block) within a client's swap space.
///
/// The DEC OSF/1 kernel addresses the paging device by block number; our
/// `PageId` plays the same role: it is the stable name under which a page is
/// paged out and later paged back in, regardless of which server currently
/// stores it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

/// Identifies a remote memory server registered in the cluster directory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId(pub u32);

/// Identifies a client of the remote memory service.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

/// Identifies a parity group in the parity-logging policy.
///
/// Groups are created in monotonically increasing order as the client logs
/// pageouts, so `GroupId` doubles as a logical timestamp: a higher id means
/// the group was sealed later.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(pub u64);

/// The key under which a blob is stored on a remote memory server.
///
/// Servers store opaque pages under `StoreKey`s and do not know whether a
/// key holds a data page, an old (inactive) version of a data page, or a
/// parity page — the paper's "a parity server is by no means different than
/// a memory server". The parity-logging policy stores many *versions* of
/// the same logical [`PageId`] simultaneously (old versions stay until
/// their parity group is reclaimed), so each version gets a fresh key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StoreKey(pub u64);

macro_rules! impl_id_fmt {
    ($t:ident, $prefix:literal) => {
        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_id_fmt!(PageId, "pg");
impl_id_fmt!(ServerId, "srv");
impl_id_fmt!(ClientId, "cli");
impl_id_fmt!(GroupId, "grp");
impl_id_fmt!(StoreKey, "key");

impl PageId {
    /// Returns the next sequential page id.
    pub fn next(self) -> PageId {
        PageId(self.0 + 1)
    }
}

impl GroupId {
    /// Returns the next sequential group id.
    pub fn next(self) -> GroupId {
        GroupId(self.0 + 1)
    }
}

impl StoreKey {
    /// Returns the next sequential store key.
    pub fn next(self) -> StoreKey {
        StoreKey(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(PageId(3).to_string(), "pg3");
        assert_eq!(ServerId(1).to_string(), "srv1");
        assert_eq!(ClientId(9).to_string(), "cli9");
        assert_eq!(GroupId(0).to_string(), "grp0");
    }

    #[test]
    fn next_increments() {
        assert_eq!(PageId(0).next(), PageId(1));
        assert_eq!(GroupId(41).next(), GroupId(42));
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(PageId(1) < PageId(2));
        assert!(GroupId(10) > GroupId(9));
    }
}
