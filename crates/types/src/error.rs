//! Error handling for the pager.

use std::fmt;
use std::io;

use crate::ids::{PageId, ServerId, StoreKey};

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, RmpError>;

/// Typed failure reason carried in protocol `Error` frames.
///
/// Replaces string matching on error messages: a server reports *why* a
/// request failed as one of these codes, and the client maps each code
/// to pager-level behaviour (`OutOfMemory` → try another server,
/// `ShuttingDown` → treat the server as gone, ...). The human-readable
/// message travels alongside the code for diagnostics only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The server's swap allocation is exhausted; the request may
    /// succeed on a different server.
    OutOfMemory,
    /// The request named a page or group the server does not hold.
    UnknownKey,
    /// The server is draining connections and will not accept work.
    ShuttingDown,
    /// An unexpected server-side failure; not attributable to the
    /// request.
    Internal,
    /// A page payload failed its end-to-end checksum: the frame arrived
    /// intact (the framing CRC passed) but the page bytes do not match
    /// the checksum stamped by the writer.
    Corrupt,
    /// The server's session worker pool and backlog are saturated; the
    /// connection was refused. Transient by construction — the client
    /// should back off and retry rather than declare the server dead.
    Overloaded,
}

impl ErrorCode {
    /// Wire encoding of the code.
    pub fn to_u8(self) -> u8 {
        match self {
            ErrorCode::OutOfMemory => 1,
            ErrorCode::UnknownKey => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::Internal => 4,
            ErrorCode::Corrupt => 5,
            ErrorCode::Overloaded => 6,
        }
    }

    /// Decodes a wire byte; unknown bytes map to [`ErrorCode::Internal`]
    /// so newer servers stay intelligible to older clients.
    pub fn from_u8(raw: u8) -> ErrorCode {
        match raw {
            1 => ErrorCode::OutOfMemory,
            2 => ErrorCode::UnknownKey,
            3 => ErrorCode::ShuttingDown,
            5 => ErrorCode::Corrupt,
            6 => ErrorCode::Overloaded,
            _ => ErrorCode::Internal,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::OutOfMemory => "out-of-memory",
            ErrorCode::UnknownKey => "unknown-key",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
            ErrorCode::Corrupt => "corrupt",
            ErrorCode::Overloaded => "overloaded",
        };
        f.write_str(name)
    }
}

/// Errors produced by the remote memory pager and its substrates.
#[derive(Debug)]
pub enum RmpError {
    /// An underlying I/O operation failed (socket or local disk).
    Io(io::Error),
    /// A wire-protocol frame was malformed or unexpected.
    Protocol(String),
    /// A server returned a typed `Error` frame; the request itself was
    /// delivered and answered, so the transport is healthy.
    Remote {
        /// Typed failure reason.
        code: ErrorCode,
        /// Diagnostic message supplied by the server.
        message: String,
    },
    /// A request to a server exceeded its configured deadline
    /// (connect, read, or write timeout).
    Timeout(ServerId),
    /// A server denied a swap-space allocation request (out of memory).
    NoSpace(ServerId),
    /// No registered server can accept more pages and no disk fallback is
    /// configured.
    ClusterFull,
    /// The requested page is not stored anywhere the pager knows about.
    PageNotFound(PageId),
    /// A server connection failed or the server crashed mid-operation.
    ServerCrashed(ServerId),
    /// Page contents failed an integrity check after recovery.
    Corrupt(PageId),
    /// A specific remote copy of a page failed its end-to-end checksum:
    /// the bytes fetched from `server` under `key` do not match the
    /// checksum recorded when the page was written. Unlike
    /// [`RmpError::Corrupt`], the faulty copy is attributable, so the
    /// pager can heal from redundancy while avoiding that copy.
    CorruptPage {
        /// Server whose copy failed verification.
        server: ServerId,
        /// Store key of the corrupt copy.
        key: StoreKey,
    },
    /// Recovery was attempted but cannot complete (e.g. two servers of a
    /// mirror pair are down, or a parity group lost two members).
    Unrecoverable(String),
    /// The pager was configured inconsistently.
    Config(String),
    /// The operation is not supported by the selected policy or device.
    Unsupported(&'static str),
}

impl fmt::Display for RmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmpError::Io(e) => write!(f, "i/o error: {e}"),
            RmpError::Protocol(m) => write!(f, "protocol error: {m}"),
            RmpError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
            RmpError::Timeout(s) => write!(f, "request to server {s} timed out"),
            RmpError::NoSpace(s) => write!(f, "server {s} denied swap allocation"),
            RmpError::ClusterFull => write!(f, "no server has free memory and no disk fallback"),
            RmpError::PageNotFound(p) => write!(f, "page {p} not found"),
            RmpError::ServerCrashed(s) => write!(f, "server {s} crashed"),
            RmpError::Corrupt(p) => write!(f, "page {p} failed integrity check"),
            RmpError::CorruptPage { server, key } => {
                write!(f, "copy {key} on server {server} failed its checksum")
            }
            RmpError::Unrecoverable(m) => write!(f, "unrecoverable: {m}"),
            RmpError::Config(m) => write!(f, "configuration error: {m}"),
            RmpError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
        }
    }
}

impl std::error::Error for RmpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RmpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RmpError {
    fn from(e: io::Error) -> Self {
        RmpError::Io(e)
    }
}

impl RmpError {
    /// Returns `true` when the error indicates a crashed or unreachable
    /// server, i.e. the condition the reliability policies recover from.
    pub fn is_server_failure(&self) -> bool {
        match self {
            RmpError::ServerCrashed(_) | RmpError::Timeout(_) => true,
            RmpError::Remote { code, .. } => *code == ErrorCode::ShuttingDown,
            RmpError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }

    /// Returns `true` when a server refused the connection because its
    /// worker pool and backlog are full. The server is alive; back off
    /// and retry instead of starting crash recovery.
    pub fn is_overload(&self) -> bool {
        matches!(
            self,
            RmpError::Remote {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }

    /// Returns `true` when the error is a deadline expiry: the server
    /// may still be alive but slow, which retry/backoff handles
    /// differently from a hard crash.
    pub fn is_timeout(&self) -> bool {
        match self {
            RmpError::Timeout(_) => true,
            RmpError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RmpError::NoSpace(ServerId(2));
        assert!(e.to_string().contains("srv2"));
        let e = RmpError::PageNotFound(PageId(7));
        assert!(e.to_string().contains("pg7"));
    }

    #[test]
    fn io_errors_convert() {
        let e: RmpError = io::Error::new(io::ErrorKind::BrokenPipe, "gone").into();
        assert!(matches!(e, RmpError::Io(_)));
        assert!(e.is_server_failure());
    }

    #[test]
    fn server_crash_is_server_failure() {
        assert!(RmpError::ServerCrashed(ServerId(0)).is_server_failure());
        assert!(!RmpError::ClusterFull.is_server_failure());
        assert!(!RmpError::Corrupt(PageId(1)).is_server_failure());
        let corrupt = RmpError::CorruptPage {
            server: ServerId(3),
            key: StoreKey(9),
        };
        // A corrupt copy is a data fault, not a transport fault: the
        // server answered, so it must not be treated as crashed.
        assert!(!corrupt.is_server_failure());
        assert!(corrupt.to_string().contains("srv3"));
    }

    #[test]
    fn error_code_roundtrips_on_wire() {
        for code in [
            ErrorCode::OutOfMemory,
            ErrorCode::UnknownKey,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
            ErrorCode::Corrupt,
            ErrorCode::Overloaded,
        ] {
            assert_eq!(ErrorCode::from_u8(code.to_u8()), code);
        }
        // Unknown bytes degrade to Internal rather than failing decode.
        assert_eq!(ErrorCode::from_u8(0), ErrorCode::Internal);
        assert_eq!(ErrorCode::from_u8(250), ErrorCode::Internal);
    }

    #[test]
    fn timeout_classification() {
        assert!(RmpError::Timeout(ServerId(1)).is_timeout());
        assert!(RmpError::Timeout(ServerId(1)).is_server_failure());
        let wouldblock: RmpError = io::Error::new(io::ErrorKind::WouldBlock, "t/o").into();
        assert!(wouldblock.is_timeout());
        let timed: RmpError = io::Error::new(io::ErrorKind::TimedOut, "t/o").into();
        assert!(timed.is_timeout());
        assert!(!RmpError::ServerCrashed(ServerId(0)).is_timeout());
        assert!(!RmpError::ClusterFull.is_timeout());
    }

    #[test]
    fn remote_errors_classify_by_code() {
        let oom = RmpError::Remote {
            code: ErrorCode::OutOfMemory,
            message: "swap full".into(),
        };
        assert!(!oom.is_server_failure());
        assert!(!oom.is_timeout());
        let down = RmpError::Remote {
            code: ErrorCode::ShuttingDown,
            message: "draining".into(),
        };
        assert!(down.is_server_failure());
        assert!(oom.to_string().contains("out-of-memory"));
        let busy = RmpError::Remote {
            code: ErrorCode::Overloaded,
            message: "backlog full".into(),
        };
        // Overload is transient: retryable, but neither a crash nor a
        // deadline expiry.
        assert!(busy.is_overload());
        assert!(!busy.is_server_failure());
        assert!(!busy.is_timeout());
        assert!(!down.is_overload());
    }

    #[test]
    fn source_chains_io_errors() {
        use std::error::Error;
        let e: RmpError = io::Error::other("x").into();
        assert!(e.source().is_some());
        assert!(RmpError::ClusterFull.source().is_none());
    }
}
