//! Error handling for the pager.

use std::fmt;
use std::io;

use crate::ids::{PageId, ServerId};

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, RmpError>;

/// Errors produced by the remote memory pager and its substrates.
#[derive(Debug)]
pub enum RmpError {
    /// An underlying I/O operation failed (socket or local disk).
    Io(io::Error),
    /// A wire-protocol frame was malformed or unexpected.
    Protocol(String),
    /// A server denied a swap-space allocation request (out of memory).
    NoSpace(ServerId),
    /// No registered server can accept more pages and no disk fallback is
    /// configured.
    ClusterFull,
    /// The requested page is not stored anywhere the pager knows about.
    PageNotFound(PageId),
    /// A server connection failed or the server crashed mid-operation.
    ServerCrashed(ServerId),
    /// Page contents failed an integrity check after recovery.
    Corrupt(PageId),
    /// Recovery was attempted but cannot complete (e.g. two servers of a
    /// mirror pair are down, or a parity group lost two members).
    Unrecoverable(String),
    /// The pager was configured inconsistently.
    Config(String),
    /// The operation is not supported by the selected policy or device.
    Unsupported(&'static str),
}

impl fmt::Display for RmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmpError::Io(e) => write!(f, "i/o error: {e}"),
            RmpError::Protocol(m) => write!(f, "protocol error: {m}"),
            RmpError::NoSpace(s) => write!(f, "server {s} denied swap allocation"),
            RmpError::ClusterFull => write!(f, "no server has free memory and no disk fallback"),
            RmpError::PageNotFound(p) => write!(f, "page {p} not found"),
            RmpError::ServerCrashed(s) => write!(f, "server {s} crashed"),
            RmpError::Corrupt(p) => write!(f, "page {p} failed integrity check"),
            RmpError::Unrecoverable(m) => write!(f, "unrecoverable: {m}"),
            RmpError::Config(m) => write!(f, "configuration error: {m}"),
            RmpError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
        }
    }
}

impl std::error::Error for RmpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RmpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RmpError {
    fn from(e: io::Error) -> Self {
        RmpError::Io(e)
    }
}

impl RmpError {
    /// Returns `true` when the error indicates a crashed or unreachable
    /// server, i.e. the condition the reliability policies recover from.
    pub fn is_server_failure(&self) -> bool {
        match self {
            RmpError::ServerCrashed(_) => true,
            RmpError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RmpError::NoSpace(ServerId(2));
        assert!(e.to_string().contains("srv2"));
        let e = RmpError::PageNotFound(PageId(7));
        assert!(e.to_string().contains("pg7"));
    }

    #[test]
    fn io_errors_convert() {
        let e: RmpError = io::Error::new(io::ErrorKind::BrokenPipe, "gone").into();
        assert!(matches!(e, RmpError::Io(_)));
        assert!(e.is_server_failure());
    }

    #[test]
    fn server_crash_is_server_failure() {
        assert!(RmpError::ServerCrashed(ServerId(0)).is_server_failure());
        assert!(!RmpError::ClusterFull.is_server_failure());
        assert!(!RmpError::Corrupt(PageId(1)).is_server_failure());
    }

    #[test]
    fn source_chains_io_errors() {
        use std::error::Error;
        let e: RmpError = io::Error::other("x").into();
        assert!(e.source().is_some());
        assert!(RmpError::ClusterFull.source().is_none());
    }
}
