//! Pager configuration.

use crate::error::{Result, RmpError};
use crate::policy::Policy;

/// Configuration of the remote memory pager client.
///
/// Mirrors the knobs the paper describes: the reliability policy, the number
/// of data servers (`S` in Section 2.2), the overflow-memory fraction each
/// server devotes to parity logging (10 % in the paper's experiments), and
/// whether a local-disk fallback exists.
///
/// # Examples
///
/// ```
/// use rmp_types::{PagerConfig, Policy};
///
/// let cfg = PagerConfig::new(Policy::ParityLogging)
///     .with_servers(4)
///     .with_overflow_fraction(0.10);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PagerConfig {
    /// Reliability policy in force.
    pub policy: Policy,
    /// Number of data servers used for striping (`S`).
    pub servers: usize,
    /// Extra memory fraction each server devotes to parity-logging overflow.
    pub overflow_fraction: f64,
    /// Whether the client may fall back to the local disk when the cluster
    /// is full (Section 2.1).
    pub disk_fallback: bool,
    /// Parity group size; defaults to `servers` as in the paper (one page
    /// per server per group).
    pub group_size: usize,
    /// Adaptive network-load switching threshold, ms per request
    /// (Section 5, "Network load"); `None` disables the adaptive switch.
    pub adaptive_threshold_ms: Option<f64>,
}

impl PagerConfig {
    /// Creates a configuration for `policy` with the paper's defaults:
    /// two servers for plain policies, 4 + 1 with 10 % overflow for parity
    /// logging.
    pub fn new(policy: Policy) -> Self {
        let servers = match policy {
            Policy::ParityLogging | Policy::BasicParity => 4,
            _ => 2,
        };
        PagerConfig {
            policy,
            servers,
            overflow_fraction: 0.10,
            disk_fallback: true,
            group_size: servers,
            adaptive_threshold_ms: None,
        }
    }

    /// Sets the number of data servers (and resets the parity group size to
    /// match, the paper's arrangement).
    pub fn with_servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self.group_size = servers;
        self
    }

    /// Sets the parity-logging overflow fraction.
    pub fn with_overflow_fraction(mut self, f: f64) -> Self {
        self.overflow_fraction = f;
        self
    }

    /// Enables or disables the local-disk fallback.
    pub fn with_disk_fallback(mut self, enabled: bool) -> Self {
        self.disk_fallback = enabled;
        self
    }

    /// Sets an explicit parity group size (pages per group).
    pub fn with_group_size(mut self, size: usize) -> Self {
        self.group_size = size;
        self
    }

    /// Enables adaptive switching to the local disk when the average
    /// network service time exceeds `ms`.
    pub fn with_adaptive_threshold_ms(mut self, ms: f64) -> Self {
        self.adaptive_threshold_ms = Some(ms);
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`RmpError::Config`] when the combination of policy and
    /// parameters cannot work (zero servers for a remote policy, mirroring
    /// with a single server, out-of-range overflow fraction, ...).
    pub fn validate(&self) -> Result<()> {
        if self.policy != Policy::DiskOnly && self.servers == 0 {
            return Err(RmpError::Config(
                "remote policies need at least one server".into(),
            ));
        }
        if self.policy == Policy::Mirroring && self.servers < 2 {
            return Err(RmpError::Config(
                "mirroring needs at least two servers".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.overflow_fraction) {
            return Err(RmpError::Config(format!(
                "overflow fraction {} outside [0, 1]",
                self.overflow_fraction
            )));
        }
        if matches!(self.policy, Policy::ParityLogging | Policy::BasicParity)
            && self.group_size == 0
        {
            return Err(RmpError::Config(
                "parity group size must be positive".into(),
            ));
        }
        if let Some(ms) = self.adaptive_threshold_ms {
            if !ms.is_finite() || ms <= 0.0 {
                return Err(RmpError::Config(format!(
                    "adaptive threshold {ms} must be positive and finite"
                )));
            }
        }
        Ok(())
    }
}

impl Default for PagerConfig {
    fn default() -> Self {
        PagerConfig::new(Policy::ParityLogging)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = PagerConfig::default();
        assert_eq!(cfg.policy, Policy::ParityLogging);
        assert_eq!(cfg.servers, 4);
        assert!((cfg.overflow_fraction - 0.10).abs() < 1e-12);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn no_reliability_defaults_to_two_servers() {
        // The Figure 2 experiment ran no-reliability with two servers.
        let cfg = PagerConfig::new(Policy::NoReliability);
        assert_eq!(cfg.servers, 2);
    }

    #[test]
    fn rejects_zero_servers_for_remote_policies() {
        let cfg = PagerConfig::new(Policy::NoReliability).with_servers(0);
        assert!(cfg.validate().is_err());
        let disk = PagerConfig::new(Policy::DiskOnly).with_servers(0);
        assert!(disk.validate().is_ok());
    }

    #[test]
    fn rejects_single_server_mirroring() {
        let cfg = PagerConfig::new(Policy::Mirroring).with_servers(1);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_overflow_fraction() {
        assert!(PagerConfig::default()
            .with_overflow_fraction(1.5)
            .validate()
            .is_err());
        assert!(PagerConfig::default()
            .with_overflow_fraction(-0.1)
            .validate()
            .is_err());
        assert!(PagerConfig::default()
            .with_overflow_fraction(0.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn rejects_bad_adaptive_threshold() {
        assert!(PagerConfig::default()
            .with_adaptive_threshold_ms(0.0)
            .validate()
            .is_err());
        assert!(PagerConfig::default()
            .with_adaptive_threshold_ms(f64::NAN)
            .validate()
            .is_err());
        assert!(PagerConfig::default()
            .with_adaptive_threshold_ms(25.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn with_servers_resets_group_size() {
        let cfg = PagerConfig::new(Policy::ParityLogging).with_servers(8);
        assert_eq!(cfg.group_size, 8);
    }
}
