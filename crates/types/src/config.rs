//! Pager configuration.

use std::time::Duration;

use crate::error::{Result, RmpError};
use crate::page::PAGE_SIZE;
use crate::policy::Policy;

/// Bounded-retry policy applied by the server pool before a server is
/// declared dead.
///
/// Attempt `n` (zero-based, after the first failure) sleeps
/// `min(base_backoff * 2^n, max_backoff)` scaled by a random factor in
/// `[1 - jitter, 1 + jitter]`, then reconnects and retries. With the
/// defaults (3 attempts, 10 ms base, 500 ms cap, 20 % jitter) a
/// transient stall costs at most ~40 ms of backoff before the pager
/// falls back to crash recovery.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per logical call, including the first
    /// (`1` disables retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Random scale applied to each sleep, as a fraction in `[0, 1]`;
    /// `0.2` means ±20 %. Keeps retried mirror writes from re-colliding.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, no backoff.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// Nominal backoff before retry `attempt` (zero-based), without
    /// jitter: exponential from `base_backoff`, capped at `max_backoff`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(factor)
            .map_or(self.max_backoff, |d| d.min(self.max_backoff))
    }
}

/// Deadlines and retry behaviour of the TCP transport.
///
/// Every socket operation in the paging path runs under one of these
/// deadlines; a pager configured with finite timeouts can never block
/// indefinitely on a hung server (the paper's pager relied on the
/// kernel's TCP timeouts, minutes long — far beyond what a page fault
/// can tolerate).
#[derive(Clone, Debug, PartialEq)]
pub struct TransportConfig {
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for each blocking read (one reply frame).
    pub read_timeout: Duration,
    /// Deadline for each blocking write (one request frame).
    pub write_timeout: Duration,
    /// Retry/backoff behaviour on transient failures.
    pub retry: RetryPolicy,
    /// Request window per server connection: how many seq-tagged frames
    /// the windowed (reactor) transport keeps outstanding at once. The
    /// server may grant less (its per-session cap). `1` falls back to
    /// the blocking request/response transport.
    pub window_max_inflight: usize,
    /// Total wall-clock budget for one logical pool call, spanning every
    /// retry attempt, backoff sleep, and reconnect dial. `None` derives a
    /// cap from the per-attempt deadlines and the retry policy, so a
    /// logical call can never run unbounded even when each attempt
    /// re-arms fresh socket timeouts.
    pub call_budget: Option<Duration>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            connect_timeout: Duration::from_millis(1000),
            read_timeout: Duration::from_millis(2000),
            write_timeout: Duration::from_millis(2000),
            retry: RetryPolicy::default(),
            window_max_inflight: 32,
            call_budget: None,
        }
    }
}

impl TransportConfig {
    /// Validates deadline and retry parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RmpError::Config`] for zero timeouts, zero attempts, or
    /// jitter outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.connect_timeout.is_zero()
            || self.read_timeout.is_zero()
            || self.write_timeout.is_zero()
        {
            return Err(RmpError::Config(
                "transport timeouts must be positive".into(),
            ));
        }
        if self.retry.max_attempts == 0 {
            return Err(RmpError::Config("retry needs at least one attempt".into()));
        }
        if !(0.0..=1.0).contains(&self.retry.jitter) || !self.retry.jitter.is_finite() {
            return Err(RmpError::Config(format!(
                "retry jitter {} outside [0, 1]",
                self.retry.jitter
            )));
        }
        if self.retry.max_backoff < self.retry.base_backoff {
            return Err(RmpError::Config("max backoff below base backoff".into()));
        }
        if self.window_max_inflight == 0 {
            return Err(RmpError::Config("request window must be at least 1".into()));
        }
        if self.call_budget.is_some_and(|b| b.is_zero()) {
            return Err(RmpError::Config("call budget must be positive".into()));
        }
        Ok(())
    }

    /// The wall-clock budget one logical pool call may consume across
    /// all retry attempts: the explicit [`TransportConfig::call_budget`]
    /// when set, otherwise the worst case the per-attempt knobs already
    /// imply — every attempt exhausting its write and read deadlines,
    /// every reconnect its dial deadline, plus maximally-jittered
    /// backoff sleeps between attempts.
    pub fn effective_call_budget(&self) -> Duration {
        if let Some(budget) = self.call_budget {
            return budget;
        }
        let attempts = self.retry.max_attempts.max(1);
        let per_attempt = self.write_timeout + self.read_timeout + self.connect_timeout;
        let mut total = per_attempt * attempts;
        for attempt in 0..attempts.saturating_sub(1) {
            total += self
                .retry
                .backoff_for(attempt)
                .mul_f64(1.0 + self.retry.jitter);
        }
        total
    }
}

/// Configuration of the remote memory pager client.
///
/// Mirrors the knobs the paper describes: the reliability policy, the number
/// of data servers (`S` in Section 2.2), the overflow-memory fraction each
/// server devotes to parity logging (10 % in the paper's experiments), and
/// whether a local-disk fallback exists.
///
/// # Examples
///
/// ```
/// use rmp_types::{PagerConfig, Policy};
///
/// let cfg = PagerConfig::new(Policy::ParityLogging)
///     .with_servers(4)
///     .with_overflow_fraction(0.10);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PagerConfig {
    /// Reliability policy in force.
    pub policy: Policy,
    /// Number of data servers used for striping (`S`).
    pub servers: usize,
    /// Extra memory fraction each server devotes to parity-logging overflow.
    pub overflow_fraction: f64,
    /// Whether the client may fall back to the local disk when the cluster
    /// is full (Section 2.1).
    pub disk_fallback: bool,
    /// Parity group size; defaults to `servers` as in the paper (one page
    /// per server per group).
    pub group_size: usize,
    /// Adaptive network-load switching threshold, ms per request
    /// (Section 5, "Network load"); `None` disables the adaptive switch.
    pub adaptive_threshold_ms: Option<f64>,
    /// Socket deadlines and retry/backoff behaviour of the paging path.
    pub transport: TransportConfig,
    /// Maximum pages rebuilt per incremental recovery step. Each call to
    /// `periodic_maintenance` advances any pending crash recovery by at
    /// most this many pages, keeping maintenance pauses bounded while a
    /// crashed server's contents are re-protected in the background.
    pub recovery_page_budget: usize,
    /// Whether page payloads are checksummed end-to-end: stamped on
    /// every pageout, carried on the wire, and verified on every pagein
    /// and after every reconstruction. Disable only for measurement runs
    /// that want the raw transfer path.
    pub verify_checksums: bool,
    /// Most pages one batch frame carries on the pipelined batch paths
    /// (group seals, recovery steps, prefetch fetches). Larger requests
    /// are split into multiple frames kept outstanding on the same
    /// connection. Clamped to the wire-protocol batch cap; `1` degrades
    /// every batch to single-page frames.
    pub batch_max_pages: usize,
    /// Stride-prefetch lookahead: on a detected majority stride the pager
    /// fetches up to this many predicted pages ahead of the faulting one.
    /// `0` disables prefetching entirely.
    pub prefetch_window: usize,
    /// Number of independent shards the concurrent front-end
    /// (`ShardedPager`) splits the page space into. Each shard owns its
    /// page table, checksum map, engine bookkeeping, and server
    /// connections, guarded by one lock, so up to `shard_count`
    /// application threads can page in parallel. Must be a power of two
    /// (shard selection masks the low bits of the `PageId`). Ignored by
    /// the single-threaded `Pager`.
    pub shard_count: usize,
    /// Suspicion score above which a pagein whose primary server looks
    /// *gray* (slow but not dead) is hedged: when a redundant policy can
    /// also serve the read through its degraded path, the pager races
    /// that path instead of queueing behind the slow primary. The score
    /// is the failure detector's accrual value (one deadline miss ≈ 2.0,
    /// decays on clean replies); `f64::INFINITY` disables hedging.
    pub hedge_suspicion_threshold: f64,
    /// Data splits per page under the erasure-coded policy (`k`): each
    /// page is cut into `k` equal splits of `PAGE_SIZE / k` bytes, so `k`
    /// must divide the page size. A degraded read costs `k` split
    /// fetches, against the parity policies' `S` full pages.
    pub ec_data_splits: usize,
    /// Parity splits per page under the erasure-coded policy (`r`): the
    /// Reed–Solomon redundancy on top of the `k` data splits. The page
    /// survives any `r` simultaneous split losses; `r = 1` degenerates to
    /// plain XOR parity.
    pub ec_parity_splits: usize,
}

impl PagerConfig {
    /// Creates a configuration for `policy` with the paper's defaults:
    /// two servers for plain policies, 4 + 1 with 10 % overflow for parity
    /// logging.
    pub fn new(policy: Policy) -> Self {
        let servers = match policy {
            Policy::ParityLogging | Policy::BasicParity => 4,
            _ => 2,
        };
        PagerConfig {
            policy,
            servers,
            overflow_fraction: 0.10,
            disk_fallback: true,
            group_size: servers,
            adaptive_threshold_ms: None,
            transport: TransportConfig::default(),
            recovery_page_budget: 64,
            verify_checksums: true,
            batch_max_pages: 16,
            prefetch_window: 8,
            shard_count: 8,
            hedge_suspicion_threshold: 3.0,
            ec_data_splits: 2,
            ec_parity_splits: 1,
        }
    }

    /// Sets the number of data servers (and resets the parity group size to
    /// match, the paper's arrangement).
    pub fn with_servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self.group_size = servers;
        self
    }

    /// Sets the parity-logging overflow fraction.
    pub fn with_overflow_fraction(mut self, f: f64) -> Self {
        self.overflow_fraction = f;
        self
    }

    /// Enables or disables the local-disk fallback.
    pub fn with_disk_fallback(mut self, enabled: bool) -> Self {
        self.disk_fallback = enabled;
        self
    }

    /// Sets an explicit parity group size (pages per group).
    pub fn with_group_size(mut self, size: usize) -> Self {
        self.group_size = size;
        self
    }

    /// Enables adaptive switching to the local disk when the average
    /// network service time exceeds `ms`.
    pub fn with_adaptive_threshold_ms(mut self, ms: f64) -> Self {
        self.adaptive_threshold_ms = Some(ms);
        self
    }

    /// Replaces the transport deadlines and retry policy.
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// Replaces just the retry policy, keeping the default deadlines.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.transport.retry = retry;
        self
    }

    /// Sets the per-step page budget of incremental crash recovery.
    pub fn with_recovery_page_budget(mut self, pages: usize) -> Self {
        self.recovery_page_budget = pages;
        self
    }

    /// Enables or disables end-to-end page checksums.
    pub fn with_verify_checksums(mut self, enabled: bool) -> Self {
        self.verify_checksums = enabled;
        self
    }

    /// Sets the per-frame page cap of the pipelined batch paths.
    pub fn with_batch_max_pages(mut self, pages: usize) -> Self {
        self.batch_max_pages = pages;
        self
    }

    /// Sets the stride-prefetch lookahead (`0` disables prefetching).
    pub fn with_prefetch_window(mut self, pages: usize) -> Self {
        self.prefetch_window = pages;
        self
    }

    /// Sets the shard count of the concurrent front-end (power of two;
    /// `1` degrades to a single-lock pager).
    pub fn with_shard_count(mut self, shards: usize) -> Self {
        self.shard_count = shards;
        self
    }

    /// Sets the suspicion score above which pageins from a gray primary
    /// are hedged through the degraded path (`f64::INFINITY` disables).
    pub fn with_hedge_suspicion_threshold(mut self, score: f64) -> Self {
        self.hedge_suspicion_threshold = score;
        self
    }

    /// Sets the erasure-code geometry: `k` data splits and `r` parity
    /// splits per page (`k` must divide the page size; placement needs
    /// `k + r` distinct live servers).
    pub fn with_ec_splits(mut self, data: usize, parity: usize) -> Self {
        self.ec_data_splits = data;
        self.ec_parity_splits = parity;
        self
    }

    /// Sets the per-connection request window of the windowed transport
    /// (`1` falls back to the blocking request/response transport).
    pub fn with_window_max_inflight(mut self, window: usize) -> Self {
        self.transport.window_max_inflight = window;
        self
    }

    /// Sets an explicit total wall-clock budget per logical pool call,
    /// spanning retries, backoff, and reconnects.
    pub fn with_call_budget(mut self, budget: Duration) -> Self {
        self.transport.call_budget = Some(budget);
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`RmpError::Config`] when the combination of policy and
    /// parameters cannot work (zero servers for a remote policy, mirroring
    /// with a single server, out-of-range overflow fraction, ...).
    pub fn validate(&self) -> Result<()> {
        if self.policy != Policy::DiskOnly && self.servers == 0 {
            return Err(RmpError::Config(
                "remote policies need at least one server".into(),
            ));
        }
        if self.policy == Policy::Mirroring && self.servers < 2 {
            return Err(RmpError::Config(
                "mirroring needs at least two servers".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.overflow_fraction) {
            return Err(RmpError::Config(format!(
                "overflow fraction {} outside [0, 1]",
                self.overflow_fraction
            )));
        }
        if matches!(self.policy, Policy::ParityLogging | Policy::BasicParity)
            && self.group_size == 0
        {
            return Err(RmpError::Config(
                "parity group size must be positive".into(),
            ));
        }
        if self.policy == Policy::ErasureCoded {
            let (k, r) = (self.ec_data_splits, self.ec_parity_splits);
            if k == 0 || r == 0 {
                return Err(RmpError::Config(format!(
                    "erasure coding needs k >= 1 data and r >= 1 parity splits, got k={k} r={r}"
                )));
            }
            if !PAGE_SIZE.is_multiple_of(k) {
                return Err(RmpError::Config(format!(
                    "ec_data_splits {k} must divide the page size ({PAGE_SIZE})"
                )));
            }
            if k + r > 32 {
                return Err(RmpError::Config(format!(
                    "erasure-code stripe width k + r = {} exceeds the placement cap of 32",
                    k + r
                )));
            }
        }
        if self.recovery_page_budget == 0 {
            return Err(RmpError::Config(
                "recovery page budget must be positive".into(),
            ));
        }
        if self.batch_max_pages == 0 {
            return Err(RmpError::Config(
                "batch size must be at least one page".into(),
            ));
        }
        if self.shard_count == 0 || !self.shard_count.is_power_of_two() {
            return Err(RmpError::Config(format!(
                "shard count {} must be a power of two",
                self.shard_count
            )));
        }
        if self.hedge_suspicion_threshold.is_nan() || self.hedge_suspicion_threshold <= 0.0 {
            return Err(RmpError::Config(format!(
                "hedge suspicion threshold {} must be positive (INFINITY disables)",
                self.hedge_suspicion_threshold
            )));
        }
        if let Some(ms) = self.adaptive_threshold_ms {
            if !ms.is_finite() || ms <= 0.0 {
                return Err(RmpError::Config(format!(
                    "adaptive threshold {ms} must be positive and finite"
                )));
            }
        }
        self.transport.validate()
    }
}

impl Default for PagerConfig {
    fn default() -> Self {
        PagerConfig::new(Policy::ParityLogging)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = PagerConfig::default();
        assert_eq!(cfg.policy, Policy::ParityLogging);
        assert_eq!(cfg.servers, 4);
        assert!((cfg.overflow_fraction - 0.10).abs() < 1e-12);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn no_reliability_defaults_to_two_servers() {
        // The Figure 2 experiment ran no-reliability with two servers.
        let cfg = PagerConfig::new(Policy::NoReliability);
        assert_eq!(cfg.servers, 2);
    }

    #[test]
    fn rejects_zero_servers_for_remote_policies() {
        let cfg = PagerConfig::new(Policy::NoReliability).with_servers(0);
        assert!(cfg.validate().is_err());
        let disk = PagerConfig::new(Policy::DiskOnly).with_servers(0);
        assert!(disk.validate().is_ok());
    }

    #[test]
    fn rejects_single_server_mirroring() {
        let cfg = PagerConfig::new(Policy::Mirroring).with_servers(1);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_overflow_fraction() {
        assert!(PagerConfig::default()
            .with_overflow_fraction(1.5)
            .validate()
            .is_err());
        assert!(PagerConfig::default()
            .with_overflow_fraction(-0.1)
            .validate()
            .is_err());
        assert!(PagerConfig::default()
            .with_overflow_fraction(0.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn rejects_bad_adaptive_threshold() {
        assert!(PagerConfig::default()
            .with_adaptive_threshold_ms(0.0)
            .validate()
            .is_err());
        assert!(PagerConfig::default()
            .with_adaptive_threshold_ms(f64::NAN)
            .validate()
            .is_err());
        assert!(PagerConfig::default()
            .with_adaptive_threshold_ms(25.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn recovery_and_integrity_knobs() {
        let cfg = PagerConfig::default();
        assert_eq!(cfg.recovery_page_budget, 64);
        assert!(cfg.verify_checksums);
        let cfg = cfg
            .with_recovery_page_budget(8)
            .with_verify_checksums(false);
        assert_eq!(cfg.recovery_page_budget, 8);
        assert!(!cfg.verify_checksums);
        assert!(cfg.validate().is_ok());
        assert!(PagerConfig::default()
            .with_recovery_page_budget(0)
            .validate()
            .is_err());
    }

    #[test]
    fn batching_and_prefetch_knobs() {
        let cfg = PagerConfig::default();
        assert_eq!(cfg.batch_max_pages, 16);
        assert_eq!(cfg.prefetch_window, 8);
        let cfg = cfg.with_batch_max_pages(4).with_prefetch_window(0);
        assert_eq!(cfg.batch_max_pages, 4);
        assert_eq!(cfg.prefetch_window, 0, "zero window disables prefetch");
        assert!(cfg.validate().is_ok());
        assert!(PagerConfig::default()
            .with_batch_max_pages(0)
            .validate()
            .is_err());
    }

    #[test]
    fn shard_count_knob() {
        let cfg = PagerConfig::default();
        assert_eq!(cfg.shard_count, 8);
        for good in [1, 2, 4, 16, 64] {
            assert!(
                PagerConfig::default()
                    .with_shard_count(good)
                    .validate()
                    .is_ok(),
                "{good} shards must validate"
            );
        }
        for bad in [0, 3, 6, 12, 100] {
            assert!(
                PagerConfig::default()
                    .with_shard_count(bad)
                    .validate()
                    .is_err(),
                "{bad} shards must be rejected (not a power of two)"
            );
        }
    }

    #[test]
    fn hedge_threshold_knob() {
        let cfg = PagerConfig::default();
        assert!((cfg.hedge_suspicion_threshold - 3.0).abs() < 1e-12);
        assert!(PagerConfig::default()
            .with_hedge_suspicion_threshold(f64::INFINITY)
            .validate()
            .is_ok());
        assert!(PagerConfig::default()
            .with_hedge_suspicion_threshold(0.5)
            .validate()
            .is_ok());
        assert!(PagerConfig::default()
            .with_hedge_suspicion_threshold(0.0)
            .validate()
            .is_err());
        assert!(PagerConfig::default()
            .with_hedge_suspicion_threshold(-1.0)
            .validate()
            .is_err());
        assert!(PagerConfig::default()
            .with_hedge_suspicion_threshold(f64::NAN)
            .validate()
            .is_err());
    }

    #[test]
    fn erasure_code_knobs() {
        let cfg = PagerConfig::new(Policy::ErasureCoded);
        assert_eq!(cfg.ec_data_splits, 2);
        assert_eq!(cfg.ec_parity_splits, 1);
        assert!(cfg.validate().is_ok());
        assert!(PagerConfig::new(Policy::ErasureCoded)
            .with_ec_splits(4, 2)
            .validate()
            .is_ok());
        // k must divide PAGE_SIZE.
        assert!(PagerConfig::new(Policy::ErasureCoded)
            .with_ec_splits(3, 1)
            .validate()
            .is_err());
        // k and r must be at least one.
        assert!(PagerConfig::new(Policy::ErasureCoded)
            .with_ec_splits(0, 1)
            .validate()
            .is_err());
        assert!(PagerConfig::new(Policy::ErasureCoded)
            .with_ec_splits(4, 0)
            .validate()
            .is_err());
        // Stripe width is capped.
        assert!(PagerConfig::new(Policy::ErasureCoded)
            .with_ec_splits(32, 4)
            .validate()
            .is_err());
        // Other policies ignore the knobs entirely.
        assert!(PagerConfig::new(Policy::Mirroring)
            .with_ec_splits(0, 0)
            .validate()
            .is_ok());
    }

    #[test]
    fn with_servers_resets_group_size() {
        let cfg = PagerConfig::new(Policy::ParityLogging).with_servers(8);
        assert_eq!(cfg.group_size, 8);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let retry = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
            jitter: 0.0,
        };
        assert_eq!(retry.backoff_for(0), Duration::from_millis(10));
        assert_eq!(retry.backoff_for(1), Duration::from_millis(20));
        assert_eq!(retry.backoff_for(2), Duration::from_millis(40));
        assert_eq!(retry.backoff_for(3), Duration::from_millis(50));
        assert_eq!(retry.backoff_for(40), Duration::from_millis(50));
    }

    #[test]
    fn no_retry_policy_is_single_attempt() {
        let retry = RetryPolicy::no_retry();
        assert_eq!(retry.max_attempts, 1);
        assert_eq!(retry.backoff_for(0), Duration::ZERO);
    }

    #[test]
    fn rejects_bad_transport_config() {
        let mut cfg = PagerConfig::default();
        cfg.transport.read_timeout = Duration::ZERO;
        assert!(cfg.validate().is_err());

        let mut cfg = PagerConfig::default();
        cfg.transport.retry.max_attempts = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = PagerConfig::default();
        cfg.transport.retry.jitter = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = PagerConfig::default();
        cfg.transport.retry.max_backoff = Duration::from_millis(1);
        assert!(cfg.validate().is_err());

        assert!(PagerConfig::default().validate().is_ok());
    }

    #[test]
    fn window_knob() {
        let cfg = PagerConfig::default();
        assert_eq!(cfg.transport.window_max_inflight, 32);
        assert!(PagerConfig::default()
            .with_window_max_inflight(1)
            .validate()
            .is_ok());
        assert!(PagerConfig::default()
            .with_window_max_inflight(0)
            .validate()
            .is_err());
    }

    #[test]
    fn call_budget_knob() {
        let cfg = PagerConfig::default();
        assert_eq!(cfg.transport.call_budget, None);
        assert!(PagerConfig::default()
            .with_call_budget(Duration::from_millis(500))
            .validate()
            .is_ok());
        assert!(PagerConfig::default()
            .with_call_budget(Duration::ZERO)
            .validate()
            .is_err());
    }

    #[test]
    fn explicit_call_budget_wins() {
        let cfg = PagerConfig::default().with_call_budget(Duration::from_millis(123));
        assert_eq!(
            cfg.transport.effective_call_budget(),
            Duration::from_millis(123)
        );
    }

    #[test]
    fn derived_call_budget_covers_worst_case_attempts() {
        // Default retry: 3 attempts, 10/20 ms backoffs, 20 % jitter.
        // Per attempt: 2 s write + 2 s read + 1 s reconnect dial.
        let cfg = TransportConfig::default();
        let budget = cfg.effective_call_budget();
        assert!(budget >= Duration::from_secs(15), "budget {budget:?}");
        assert!(budget <= Duration::from_secs(16), "budget {budget:?}");
    }
}
