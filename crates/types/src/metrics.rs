//! Lock-cheap runtime observability: counters, gauges, fixed-bucket
//! latency histograms, and a bounded trace-event ring — all exportable as
//! one JSON snapshot.
//!
//! The paper's whole evaluation (Figures 1–5) rests on *measured*
//! per-policy transfer counts and latencies. This module is the
//! instrumentation those measurements flow through at runtime: the pager,
//! the server pool, the policy engines, the recovery driver, and the
//! remote memory server each hold a [`MetricsRegistry`] (or share one)
//! and record into pre-resolved handles, so the hot path costs one or two
//! relaxed atomic operations per event — no locks, no allocation.
//!
//! The design in one breath:
//!
//! * [`Counter`] / [`Gauge`] — single `AtomicU64`s.
//! * [`Histogram`] — fixed log-spaced microsecond buckets
//!   ([`LATENCY_BUCKETS_US`]) plus exact `count`/`sum`/`max`; percentiles
//!   (p50/p90/p99) are interpolated from the buckets at snapshot time,
//!   never computed on the hot path.
//! * [`EventRing`] — a bounded ring of structured [`TraceEvent`]s
//!   (pageout, pagein, retry, degraded read, recovery step, crash,
//!   rejoin, …), each stamped with a registry-relative timestamp and an
//!   optional server/policy/outcome. Old events are evicted, and the
//!   eviction count is reported, so the ring is lossy but never lies.
//! * [`MetricsRegistry`] — a name → handle table. Registration takes a
//!   short lock; recording through the returned [`Arc`] handles does not.
//!   [`MetricsRegistry::snapshot_json`] serializes everything (schema
//!   `rmp-metrics-v1`, documented in `OBSERVABILITY.md`).
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use rmp_types::metrics::MetricsRegistry;
//!
//! let metrics = MetricsRegistry::new();
//! // Resolve handles once, record cheaply ever after.
//! let pageouts = metrics.counter("pager_pageouts_total");
//! let latency = metrics.histogram("pager_pageout_latency_us");
//! for _ in 0..100 {
//!     pageouts.inc();
//!     latency.record(Duration::from_micros(120));
//! }
//! assert_eq!(pageouts.get(), 100);
//! assert_eq!(latency.snapshot().count, 100);
//! let json = metrics.snapshot_json();
//! assert!(json.contains("\"pager_pageouts_total\": 100"));
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::{Policy, ServerId};

/// Upper bounds (inclusive, microseconds) of the histogram buckets; a
/// final implicit overflow bucket catches everything slower than 10 s.
///
/// Log-spaced 1-2-5 steps from 1 µs to 10 s cover everything from a
/// loopback RAM hit to a retry loop draining its whole backoff budget,
/// with ≤ 2.5× relative error inside any bucket — plenty for the p50/p90/
/// p99 comparisons the paper's tables make.
pub const LATENCY_BUCKETS_US: [u64; 22] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

/// Default capacity of a registry's trace-event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 512;

/// A monotonically increasing `u64` counter.
///
/// # Examples
///
/// ```
/// use rmp_types::metrics::Counter;
///
/// let c = Counter::default();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating at `u64::MAX`, like the stats it mirrors).
    pub fn add(&self, n: u64) {
        let prev = self.0.fetch_add(n, Ordering::Relaxed);
        if prev.checked_add(n).is_none() {
            self.0.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (backlog depth, occupancy, 0/1 flags).
///
/// # Examples
///
/// ```
/// use rmp_types::metrics::Gauge;
///
/// let g = Gauge::default();
/// g.set(42);
/// assert_eq!(g.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram (microseconds).
///
/// Recording is two relaxed atomic adds plus an atomic max; the bucket
/// index is found by binary search over [`LATENCY_BUCKETS_US`]. Nothing
/// is computed until [`Histogram::snapshot`].
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use rmp_types::metrics::Histogram;
///
/// let h = Histogram::default();
/// for us in [100u64, 150, 200, 900, 5_000] {
///     h.record(Duration::from_micros(us));
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 5);
/// assert_eq!(snap.max_us, 5_000);
/// assert!(snap.p50_us() <= snap.p90_us() && snap.p90_us() <= snap.p99_us());
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len()],
    overflow: AtomicU64,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation of `d`.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one observation of `us` microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = LATENCY_BUCKETS_US.partition_point(|&bound| bound < us);
        match self.buckets.get(idx) {
            Some(b) => b.fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state out for analysis/serialization.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with percentile estimation.
///
/// Shared schema note: the figure harnesses in `crates/bench` emit their
/// latency numbers through this same type, so `BENCH_*.json` files and
/// runtime `rmpstat` snapshots carry identical histogram objects.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, microseconds.
    pub sum_us: u64,
    /// Largest observation, microseconds (exact, not bucketed).
    pub max_us: u64,
    /// Per-bucket counts, parallel to [`LATENCY_BUCKETS_US`].
    pub buckets: [u64; LATENCY_BUCKETS_US.len()],
    /// Observations above the last bucket bound.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) in microseconds by linear
    /// interpolation inside the containing bucket, clamped to the exact
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = cumulative as f64;
            cumulative += n;
            if (cumulative as f64) >= rank {
                let lo = if i == 0 { 0 } else { LATENCY_BUCKETS_US[i - 1] } as f64;
                let hi = LATENCY_BUCKETS_US[i] as f64;
                let within = (rank - before) / n as f64;
                return (lo + (hi - lo) * within).min(self.max_us as f64);
            }
        }
        // Rank lands in the overflow bucket: the max is the best bound.
        self.max_us as f64
    }

    /// Median, microseconds.
    pub fn p50_us(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile, microseconds.
    pub fn p90_us(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile, microseconds.
    pub fn p99_us(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Serializes as a JSON object: exact `count`/`sum_us`/`max_us`,
    /// derived `mean_us`/`p50_us`/`p90_us`/`p99_us`, and the non-empty
    /// buckets as `[upper_bound_us, count]` pairs (`overflow` separate).
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !buckets.is_empty() {
                buckets.push_str(", ");
            }
            let _ = write!(buckets, "[{}, {}]", LATENCY_BUCKETS_US[i], n);
        }
        format!(
            "{{\"count\": {}, \"sum_us\": {}, \"mean_us\": {:.1}, \"p50_us\": {:.1}, \
             \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {}, \
             \"buckets\": [{}], \"overflow\": {}}}",
            self.count,
            self.sum_us,
            self.mean_us(),
            self.p50_us(),
            self.p90_us(),
            self.p99_us(),
            self.max_us,
            buckets,
            self.overflow,
        )
    }
}

/// What happened, for [`TraceEvent`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A pageout was serviced by the pager.
    PageOut,
    /// A pagein was serviced by the pager.
    PageIn,
    /// One wire call attempt failed transiently and was retried.
    Retry,
    /// A pagein was served from redundancy while its holder was down.
    DegradedRead,
    /// One bounded step of an incremental rebuild ran.
    RecoveryStep,
    /// A server was declared dead (crash, timeout budget, shutdown).
    Crash,
    /// A previously dead server was reconnected and rejoined the pool.
    Rejoin,
    /// Pages were migrated away from a loaded server.
    Migration,
    /// A parity-log garbage-collection pass ran.
    Gc,
    /// A page failed its end-to-end checksum.
    ChecksumFailure,
    /// A pagein was hedged: the primary looked gray (high suspicion,
    /// slow expected reply) and the degraded path was raced instead.
    Hedge,
}

impl EventKind {
    /// Stable snake-case name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::PageOut => "pageout",
            EventKind::PageIn => "pagein",
            EventKind::Retry => "retry",
            EventKind::DegradedRead => "degraded_read",
            EventKind::RecoveryStep => "recovery_step",
            EventKind::Crash => "crash",
            EventKind::Rejoin => "rejoin",
            EventKind::Migration => "migration",
            EventKind::Gc => "gc",
            EventKind::ChecksumFailure => "checksum_failure",
            EventKind::Hedge => "hedge",
        }
    }
}

/// One structured trace event in the ring.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Monotonic sequence number (survives ring eviction, so gaps in a
    /// snapshot reveal exactly how much history was lost).
    pub seq: u64,
    /// Microseconds since the registry was created.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// The server involved, if any.
    pub server: Option<ServerId>,
    /// The policy in force, if known.
    pub policy: Option<Policy>,
    /// Short outcome tag: `"ok"`, `"error"`, or a kind-specific word.
    pub outcome: &'static str,
    /// Optional free-form context (counts, error text).
    pub detail: Option<String>,
}

impl TraceEvent {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\": {}, \"at_us\": {}, \"kind\": \"{}\", \"outcome\": \"{}\"",
            self.seq,
            self.at_us,
            self.kind.as_str(),
            self.outcome,
        );
        if let Some(server) = self.server {
            let _ = write!(s, ", \"server\": {}", server.0);
        }
        if let Some(policy) = self.policy {
            let _ = write!(s, ", \"policy\": \"{}\"", policy.label());
        }
        if let Some(detail) = &self.detail {
            let _ = write!(s, ", \"detail\": \"{}\"", escape_json(detail));
        }
        s.push('}');
        s
    }
}

#[derive(Debug, Default)]
struct RingInner {
    buf: VecDeque<TraceEvent>,
    next_seq: u64,
    evicted: u64,
}

/// A bounded in-memory ring of [`TraceEvent`]s.
///
/// Pushing to a full ring evicts the oldest event and counts the
/// eviction, so snapshots always state how much history they are missing.
/// Capacity 0 disables tracing entirely (pushes become no-ops).
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            capacity,
            inner: Mutex::new(RingInner::default()),
        }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends `event`, stamping its sequence number; evicts the oldest
    /// event when full.
    pub fn push(&self, mut event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("event ring poisoned");
        event.seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() >= self.capacity {
            inner.buf.pop_front();
            inner.evicted += 1;
        }
        inner.buf.push_back(event);
    }

    /// Copies out the retained events (oldest first) and the count of
    /// events evicted so far.
    pub fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let inner = self.inner.lock().expect("event ring poisoned");
        (inner.buf.iter().cloned().collect(), inner.evicted)
    }
}

/// A named collection of [`Counter`]s, [`Gauge`]s, [`Histogram`]s, and an
/// [`EventRing`], snapshottable as JSON.
///
/// Handles are resolved once (a short registration lock) and then shared
/// as [`Arc`]s; recording through a handle is lock-free. Names follow
/// `<subsystem>_<what>_<unit-or-total>` (catalogued in
/// `OBSERVABILITY.md`); per-server variants append `{srvN}`.
///
/// # Examples
///
/// ```
/// use rmp_types::metrics::{EventKind, MetricsRegistry};
/// use rmp_types::{Policy, ServerId};
///
/// let m = MetricsRegistry::new();
/// m.counter("pool_retries_total").inc();
/// m.gauge("pager_recovery_backlog").set(2);
/// m.trace(
///     EventKind::Crash,
///     Some(ServerId(3)),
///     Some(Policy::Mirroring),
///     "dead",
/// );
/// let (events, evicted) = m.events();
/// assert_eq!(events.len(), 1);
/// assert_eq!(evicted, 0);
/// assert!(m.snapshot_json().contains("\"kind\": \"crash\""));
/// ```
#[derive(Debug)]
pub struct MetricsRegistry {
    started: Instant,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    ring: EventRing,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// Creates a registry with the default event-ring capacity.
    pub fn new() -> Self {
        MetricsRegistry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Creates a registry retaining at most `capacity` trace events
    /// (0 disables event tracing).
    pub fn with_event_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            started: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            ring: EventRing::new(capacity),
        }
    }

    /// Microseconds since the registry was created (the event clock).
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Returns (registering if needed) the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter table poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns (registering if needed) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge table poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns (registering if needed) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram table poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Appends a trace event with no detail text.
    pub fn trace(
        &self,
        kind: EventKind,
        server: Option<ServerId>,
        policy: Option<Policy>,
        outcome: &'static str,
    ) {
        self.trace_with(kind, server, policy, outcome, None);
    }

    /// Appends a trace event carrying free-form `detail`.
    pub fn trace_with(
        &self,
        kind: EventKind,
        server: Option<ServerId>,
        policy: Option<Policy>,
        outcome: &'static str,
        detail: Option<String>,
    ) {
        self.ring.push(TraceEvent {
            seq: 0, // Stamped by the ring.
            at_us: self.elapsed_us(),
            kind,
            server,
            policy,
            outcome,
            detail,
        });
    }

    /// Copies out the retained trace events (oldest first) plus the count
    /// of evicted events.
    pub fn events(&self) -> (Vec<TraceEvent>, u64) {
        self.ring.snapshot()
    }

    /// Serializes every metric and the event ring as one JSON object
    /// (schema `rmp-metrics-v1`; see `OBSERVABILITY.md`).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\": \"rmp-metrics-v1\"");
        let _ = write!(out, ", \"uptime_us\": {}", self.elapsed_us());
        out.push_str(", \"counters\": {");
        {
            let map = self.counters.lock().expect("counter table poisoned");
            for (i, (name, c)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {}", escape_json(name), c.get());
            }
        }
        out.push_str("}, \"gauges\": {");
        {
            let map = self.gauges.lock().expect("gauge table poisoned");
            for (i, (name, g)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {}", escape_json(name), g.get());
            }
        }
        out.push_str("}, \"histograms\": {");
        {
            let map = self.histograms.lock().expect("histogram table poisoned");
            for (i, (name, h)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {}", escape_json(name), h.snapshot().to_json());
            }
        }
        let (events, evicted) = self.ring.snapshot();
        let _ = write!(
            out,
            "}}, \"events\": {{\"capacity\": {}, \"evicted\": {}, \"entries\": [",
            self.ring.capacity(),
            evicted
        );
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}}");
        out
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::default();
        // 90 fast observations and 10 slow ones: p50 must sit in the fast
        // band, p99 in the slow band, max exact.
        for _ in 0..90 {
            h.record_us(80);
        }
        for _ in 0..10 {
            h.record_us(45_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 45_000);
        assert!(s.p50_us() <= 100.0, "p50 {}", s.p50_us());
        assert!(s.p99_us() > 20_000.0, "p99 {}", s.p99_us());
        assert!(s.p50_us() <= s.p90_us() && s.p90_us() <= s.p99_us());
        assert!((s.mean_us() - (90.0 * 80.0 + 10.0 * 45_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let h = Histogram::default();
        h.record_us(3); // Bucket bound is 5; the max must still win.
        let s = h.snapshot();
        assert!(s.quantile(1.0) <= 3.0);
    }

    #[test]
    fn overflow_bucket_catches_outliers() {
        let h = Histogram::default();
        h.record_us(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.overflow, 1);
        assert_eq!(s.quantile(0.99), u64::MAX as f64);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_us(), 0.0);
        assert_eq!(s.mean_us(), 0.0);
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let ring = EventRing::new(4);
        for i in 0..10u64 {
            ring.push(TraceEvent {
                seq: 0,
                at_us: i,
                kind: EventKind::PageOut,
                server: None,
                policy: None,
                outcome: "ok",
                detail: None,
            });
        }
        let (events, evicted) = ring.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(evicted, 6);
        // Sequence numbers survive eviction: the retained tail is 6..10.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_ring_disables_tracing() {
        let m = MetricsRegistry::with_event_capacity(0);
        m.trace(EventKind::Crash, None, None, "dead");
        let (events, evicted) = m.events();
        assert!(events.is_empty());
        assert_eq!(evicted, 0);
    }

    #[test]
    fn registry_handles_are_shared() {
        let m = MetricsRegistry::new();
        let a = m.counter("x_total");
        let b = m.counter("x_total");
        a.inc();
        b.inc();
        assert_eq!(m.counter("x_total").get(), 2);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let m = MetricsRegistry::new();
        m.counter("a_total").add(3);
        m.gauge("b_gauge").set(7);
        m.histogram("c_us").record_us(100);
        m.trace_with(
            EventKind::DegradedRead,
            Some(ServerId(1)),
            Some(Policy::ParityLogging),
            "ok",
            Some("quote \" and \\ backslash".into()),
        );
        let json = m.snapshot_json();
        assert!(json.contains("\"schema\": \"rmp-metrics-v1\""));
        assert!(json.contains("\"a_total\": 3"));
        assert!(json.contains("\"b_gauge\": 7"));
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"kind\": \"degraded_read\""));
        assert!(json.contains("\"policy\": \"Parity logging\""));
        assert!(json.contains("quote \\\" and \\\\ backslash"));
        // Balanced braces/brackets (cheap well-formedness check; none of
        // the escaped content above adds unbalanced delimiters).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for pair in LATENCY_BUCKETS_US.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
