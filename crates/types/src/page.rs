//! Fixed-size memory pages.
//!
//! The paper's pager moves 8 KB DEC OSF/1 pages; every transfer, parity
//! computation and store operation in this workspace operates on [`Page`]
//! values of exactly [`PAGE_SIZE`] bytes.

use std::fmt;

/// Size of an operating-system page in bytes (8 KB on DEC OSF/1 Alpha).
pub const PAGE_SIZE: usize = 8192;

/// An owned, heap-allocated page of exactly [`PAGE_SIZE`] bytes.
///
/// `Page` is the unit of every pager operation: pageouts ship a `Page` to a
/// remote memory server, pageins retrieve one, and the parity policies XOR
/// pages together to build redundancy. The buffer is boxed so that moving a
/// `Page` is cheap and collections of pages do not blow the stack.
///
/// # Examples
///
/// ```
/// use rmp_types::Page;
///
/// let mut a = Page::zeroed();
/// a.as_mut()[0] = 0xAB;
/// let b = Page::filled(0xAB);
/// let mut x = a.clone();
/// x.xor_with(&b);
/// assert_eq!(x.as_ref()[0], 0); // 0xAB ^ 0xAB
/// assert_eq!(x.as_ref()[1], 0xAB); // 0 ^ 0xAB
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// Returns a page with every byte set to zero.
    pub fn zeroed() -> Self {
        Page {
            buf: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Returns a page with every byte set to `byte`.
    pub fn filled(byte: u8) -> Self {
        Page {
            buf: Box::new([byte; PAGE_SIZE]),
        }
    }

    /// Builds a page from a full-size slice.
    ///
    /// Returns `None` when `bytes` is not exactly [`PAGE_SIZE`] long.
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != PAGE_SIZE {
            return None;
        }
        let mut page = Page::zeroed();
        page.buf.copy_from_slice(bytes);
        Some(page)
    }

    /// Builds a page whose contents are a deterministic function of `seed`.
    ///
    /// Used throughout the test suites to create distinguishable pages
    /// without pulling in a random number generator.
    pub fn deterministic(seed: u64) -> Self {
        let mut page = Page::zeroed();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for chunk in page.buf.chunks_mut(8) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let bytes = state.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        page
    }

    /// XORs `other` into this page in place.
    ///
    /// This is the core primitive of the parity and parity-logging
    /// reliability policies: a parity page is the XOR of all pages in its
    /// parity group, and a lost page is reconstructed by XORing the
    /// survivors with the parity.
    pub fn xor_with(&mut self, other: &Page) {
        // Process 8 bytes at a time; the optimizer vectorizes this loop.
        for (dst, src) in self.buf.chunks_exact_mut(8).zip(other.buf.chunks_exact(8)) {
            let a = u64::from_ne_bytes(dst.try_into().expect("chunk is 8 bytes"));
            let b = u64::from_ne_bytes(src.try_into().expect("chunk is 8 bytes"));
            dst.copy_from_slice(&(a ^ b).to_ne_bytes());
        }
    }

    /// Returns `true` when every byte of the page is zero.
    pub fn is_zero(&self) -> bool {
        self.buf
            .chunks_exact(8)
            .all(|c| u64::from_ne_bytes(c.try_into().expect("chunk is 8 bytes")) == 0)
    }

    /// Resets every byte of the page to zero.
    pub fn clear(&mut self) {
        self.buf.fill(0);
    }

    /// Returns a 64-bit FNV-style checksum of the page contents,
    /// folded one little-endian word at a time.
    ///
    /// Used for end-to-end integrity checks in tests and recovery
    /// verification; it is not a cryptographic hash. The word-wide fold
    /// matters: the server computes a checksum for every `PageIn` reply
    /// and verifies one for every `PageOut`, and a byte-serial FNV chain
    /// (4096 dependent multiplies) costs ~10 µs per page — enough to cap
    /// the whole data path. Eight bytes per multiply keeps the same
    /// single-bit diffusion while cutting the chain to 512 steps.
    pub fn checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut chunks = self.buf.chunks_exact(8);
        for chunk in &mut chunks {
            h ^= u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            h = h.wrapping_mul(FNV_PRIME);
        }
        for &b in chunks.remainder() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl AsRef<[u8]> for Page {
    fn as_ref(&self) -> &[u8] {
        &self.buf[..]
    }
}

impl AsMut<[u8]> for Page {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf[..]
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Page {{ checksum: {:#018x}, zero: {} }}",
            self.checksum(),
            self.is_zero()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero() {
        assert!(Page::zeroed().is_zero());
        assert!(!Page::filled(1).is_zero());
    }

    #[test]
    fn from_slice_requires_exact_size() {
        assert!(Page::from_slice(&[0u8; PAGE_SIZE]).is_some());
        assert!(Page::from_slice(&[0u8; PAGE_SIZE - 1]).is_none());
        assert!(Page::from_slice(&[0u8; PAGE_SIZE + 1]).is_none());
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = Page::deterministic(1);
        let b = Page::deterministic(2);
        let mut x = a.clone();
        x.xor_with(&b);
        assert_ne!(x, a);
        x.xor_with(&b);
        assert_eq!(x, a);
    }

    #[test]
    fn xor_with_self_is_zero() {
        let a = Page::deterministic(42);
        let mut x = a.clone();
        x.xor_with(&a);
        assert!(x.is_zero());
    }

    #[test]
    fn deterministic_pages_differ_by_seed() {
        assert_ne!(Page::deterministic(1), Page::deterministic(2));
        assert_eq!(Page::deterministic(7), Page::deterministic(7));
    }

    #[test]
    fn checksum_detects_corruption() {
        let a = Page::deterministic(5);
        let mut b = a.clone();
        assert_eq!(a.checksum(), b.checksum());
        b.as_mut()[100] ^= 0xFF;
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn clear_resets_contents() {
        let mut a = Page::deterministic(9);
        a.clear();
        assert!(a.is_zero());
    }

    #[test]
    fn debug_formatting_is_compact() {
        let s = format!("{:?}", Page::zeroed());
        assert!(s.contains("zero: true"));
    }
}
