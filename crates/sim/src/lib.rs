//! Performance models and simulators for the 1996 evaluation.
//!
//! The paper measured a DEC-Alpha cluster on 10 Mbit/s Ethernet against a
//! DEC RZ55 disk. We do not have that hardware; following the paper's own
//! methodology (Section 4.3 decomposes completion time and scales the
//! bandwidth-dependent term analytically), this crate turns the *real*
//! request counts produced by the functional layer into 1996-scale
//! completion times:
//!
//! * [`model`] — the completion-time decomposition
//!   `etime = utime + systime + inittime + transfers×pptime + btime`
//!   and its bandwidth extrapolation (Figure 4), plus per-policy transfer
//!   accounting (Figures 2 and 5).
//! * [`ethernet`] — a slotted CSMA/CD simulator with binary exponential
//!   backoff, reproducing the loaded-Ethernet throughput collapse of
//!   Section 4.6.
//! * [`idle`] — the weekly idle-DRAM trace generator behind Figure 1.
//! * [`busy`] — the busy-server contention model of Section 4.5.
//! * [`des`]/[`pipeline`] — a discrete-event simulation of the whole
//!   paging pipeline (shared link with background traffic, disk arm,
//!   protocol processing) that cross-validates the analytic model and
//!   exposes the queueing effects it cannot capture.

pub mod busy;
pub mod capacity;
pub mod des;
pub mod ethernet;
pub mod idle;
pub mod model;
pub mod pipeline;

pub use busy::BusyServerModel;
pub use capacity::{simulate_week, CapacityReport};
pub use des::{EventQueue, FifoResource};
pub use ethernet::{CsmaCd, EthernetConfig, LoadPoint};
pub use idle::{IdleTrace, IdleTraceConfig, Sample};
pub use model::{CompletionModel, PolicyCosts, RunBreakdown};
pub use pipeline::{ops_from_counts, PipeOp, PipelineConfig, PipelineResult, PipelineSim};
