//! The completion-time model of Section 4.3.

use rmp_types::{Hw1996, Policy};

/// A completion time decomposed the way the paper decomposes it:
/// user time, system time, initialization time, protocol-processing time
/// and bandwidth-dependent blocking time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunBreakdown {
    /// Useful computation, seconds.
    pub utime: f64,
    /// Kernel time, seconds.
    pub systime: f64,
    /// Program load/start time, seconds.
    pub inittime: f64,
    /// Protocol processing (`transfers x pptime`), seconds.
    pub pptime: f64,
    /// Bandwidth-dependent blocking time, seconds.
    pub btime: f64,
    /// Local-disk time, seconds.
    pub dtime: f64,
}

impl RunBreakdown {
    /// Total elapsed time, seconds.
    pub fn etime(&self) -> f64 {
        self.utime + self.systime + self.inittime + self.pptime + self.btime + self.dtime
    }

    /// Fraction of the run spent paging (everything but u/sys/init).
    pub fn paging_fraction(&self) -> f64 {
        let e = self.etime();
        if e == 0.0 {
            return 0.0;
        }
        (self.pptime + self.btime + self.dtime) / e
    }
}

/// Per-policy transfer accounting for a run with known pagein/pageout
/// counts — the inputs to the Figure 2 and Figure 5 bars.
#[derive(Clone, Copy, Debug)]
pub struct PolicyCosts {
    /// Pageins the kernel issued.
    pub pageins: u64,
    /// Pageouts the kernel issued.
    pub pageouts: u64,
    /// Data servers (`S`).
    pub servers: usize,
}

impl PolicyCosts {
    /// Network page transfers the policy performs for this run.
    pub fn net_transfers(&self, policy: Policy) -> f64 {
        match policy {
            Policy::DiskOnly => 0.0,
            _ => {
                self.pageins as f64
                    + self.pageouts as f64 * policy.transfers_per_pageout(self.servers)
            }
        }
    }

    /// Local-disk page operations the policy performs.
    pub fn disk_ops(&self, policy: Policy) -> f64 {
        match policy {
            Policy::DiskOnly => (self.pageins + self.pageouts) as f64,
            Policy::WriteThrough => self.pageouts as f64,
            _ => 0.0,
        }
    }
}

/// Completion-time model parameterized by the 1996 hardware constants.
///
/// # Examples
///
/// ```
/// use rmp_sim::{CompletionModel, PolicyCosts};
/// use rmp_types::Policy;
///
/// let model = CompletionModel::paper();
/// let costs = PolicyCosts { pageins: 2055, pageouts: 2718, servers: 4 };
/// let run = model.run(69.481, costs, Policy::ParityLogging);
/// // The paper's FFT 24 MB case study: ~130.8 s elapsed on the Ethernet.
/// assert!((run.etime() - 130.76).abs() < 0.5);
/// // Ten times the bandwidth cuts it to ~83.5 s.
/// let fast = model.extrapolate(run, 10.0);
/// assert!((fast.etime() - 83.46).abs() < 0.5);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CompletionModel {
    /// Hardware/timing parameters.
    pub hw: Hw1996,
}

impl CompletionModel {
    /// Model over the paper's testbed constants.
    pub fn paper() -> Self {
        CompletionModel {
            hw: Hw1996::default(),
        }
    }

    /// Effective per-page cost of sequential, large-chunk disk writes
    /// (write-through's disk half): no seeks, half-rotation plus
    /// transfer. Section 4.7: "the effective disk bandwidth is close to
    /// 10 Mbps, since there are no head movements for reads and writes
    /// are performed in large chunks".
    pub fn disk_sequential_ms(&self) -> f64 {
        self.hw.disk_avg_rotation_ms + self.hw.raw_disk_transfer_ms()
    }

    /// Completion time of a run under `policy`.
    ///
    /// `utime` covers user+system+init (seconds); the network terms come
    /// from the transfer counts, the disk term from the policy's disk
    /// traffic. For write-through the network transfer and the disk write
    /// proceed in parallel, so each pageout costs the maximum of the two.
    pub fn run(&self, utime: f64, costs: PolicyCosts, policy: Policy) -> RunBreakdown {
        let net_ms = self.hw.net_ms_per_page();
        let mut breakdown = RunBreakdown {
            utime,
            ..RunBreakdown::default()
        };
        match policy {
            Policy::DiskOnly => {
                breakdown.dtime = (self.hw.disk_ms_per_page * costs.disk_ops(policy)) / 1000.0;
            }
            Policy::WriteThrough => {
                // Reads come from remote memory; every write goes to the
                // network and the disk in parallel, so the slower stream
                // bounds the paging time, plus a small interference term
                // (bus and driver contention between the two streams).
                let net_s = costs.net_transfers(policy) * net_ms / 1000.0;
                let disk_s = costs.pageouts as f64 * self.disk_sequential_ms() / 1000.0;
                let paging = net_s.max(disk_s) + 0.05 * net_s.min(disk_s);
                breakdown.pptime = costs.net_transfers(policy) * self.hw.pptime_ms / 1000.0;
                breakdown.btime = (paging - breakdown.pptime).max(0.0);
            }
            _ => {
                let transfers = costs.net_transfers(policy);
                breakdown.pptime = transfers * self.hw.pptime_ms / 1000.0;
                breakdown.btime = transfers * self.hw.wire_ms_per_page / 1000.0;
            }
        }
        breakdown
    }

    /// The Figure 4 extrapolation: given a measured breakdown on the
    /// Ethernet, predict elapsed time on a network with `factor` times the
    /// bandwidth. Protocol time is bandwidth-independent; blocking time
    /// shrinks by the factor.
    pub fn extrapolate(&self, measured: RunBreakdown, factor: f64) -> RunBreakdown {
        RunBreakdown {
            btime: measured.btime / factor,
            ..measured
        }
    }

    /// The ALL MEMORY prediction: enough local memory for the whole
    /// working set, so paging vanishes.
    pub fn all_memory(&self, measured: RunBreakdown) -> RunBreakdown {
        RunBreakdown {
            pptime: 0.0,
            btime: 0.0,
            dtime: 0.0,
            ..measured
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's FFT 24 MB case study, Section 4.3: measured elapsed
    /// 130.76 s = 66.138 user + 3.133 system + 0.21 init + 61.279 page
    /// transfer; 2718 pageouts and 2055 pageins over 4+1 servers give
    /// 3397 + 2055 = 5452 transfers; protocol = 5452 x 1.6 ms = 8.723 s;
    /// blocking = 52.556 s; at 10x bandwidth the total becomes 83.459 s
    /// with paging under 17 %.
    #[test]
    fn fft_24mb_case_study_matches_paper() {
        let model = CompletionModel::paper();
        let transfers: f64 = 5452.0;
        let pptime = transfers * 1.6 / 1000.0;
        assert!((pptime - 8.7232).abs() < 1e-9);
        let measured = RunBreakdown {
            utime: 66.138,
            systime: 3.133,
            inittime: 0.21,
            pptime,
            btime: 61.279 - pptime,
            dtime: 0.0,
        };
        assert!((measured.etime() - 130.76).abs() < 1e-6);
        let fast = model.extrapolate(measured, 10.0);
        assert!(
            (fast.etime() - 83.459).abs() < 0.01,
            "expected 83.459, got {}",
            fast.etime()
        );
        assert!(
            fast.paging_fraction() < 0.17,
            "paging fraction {} should be < 17 %",
            fast.paging_fraction()
        );
        let all_mem = model.all_memory(measured);
        assert!((all_mem.etime() - 69.481).abs() < 1e-6);
    }

    #[test]
    fn parity_logging_transfers_match_section_43() {
        // "Since 4 servers were used plus a parity server the number of
        // page transfers was equal to 3397 + 2055 = 5452."
        let costs = PolicyCosts {
            pageins: 2055,
            pageouts: 2718,
            servers: 4,
        };
        let t = costs.net_transfers(Policy::ParityLogging);
        // 2718 * 1.25 = 3397.5 ~ paper's 3397 (they round down).
        assert!((t - (2055.0 + 3397.5)).abs() < 1e-9);
    }

    #[test]
    fn policy_ordering_on_a_balanced_run() {
        let model = CompletionModel::paper();
        let costs = PolicyCosts {
            pageins: 1000,
            pageouts: 1000,
            servers: 4,
        };
        let t = |p: Policy| model.run(10.0, costs, p).etime();
        let norel = t(Policy::NoReliability);
        let pl = t(Policy::ParityLogging);
        let mir = t(Policy::Mirroring);
        let disk = t(Policy::DiskOnly);
        assert!(norel < pl, "no-reliability beats parity logging");
        assert!(pl < mir, "parity logging beats mirroring");
        assert!(mir < disk, "even mirroring beats the disk here");
    }

    #[test]
    fn mirroring_loses_to_disk_on_pageout_heavy_runs() {
        // The MVEC effect: many pageouts, almost no pageins.
        let model = CompletionModel::paper();
        let costs = PolicyCosts {
            pageins: 10,
            pageouts: 2000,
            servers: 2,
        };
        let mir = model.run(5.0, costs, Policy::Mirroring).etime();
        let disk = model.run(5.0, costs, Policy::DiskOnly).etime();
        assert!(mir > disk, "2 x 11.24 ms beats 17 ms per pageout never");
    }

    #[test]
    fn write_through_beats_parity_logging_at_equal_bandwidth() {
        // Section 4.7: with disk and network at 10 Mbit/s, write-through
        // performs better than parity logging, slightly worse than
        // no-reliability (for read-heavy runs).
        let model = CompletionModel::paper();
        let costs = PolicyCosts {
            pageins: 1500,
            pageouts: 1000,
            servers: 4,
        };
        let wt = model.run(10.0, costs, Policy::WriteThrough).etime();
        let pl = model.run(10.0, costs, Policy::ParityLogging).etime();
        let norel = model.run(10.0, costs, Policy::NoReliability).etime();
        assert!(wt < pl, "write-through {wt} beats parity logging {pl}");
        assert!(
            wt > norel,
            "write-through {wt} trails no-reliability {norel}"
        );
    }

    #[test]
    fn write_through_pays_the_disk_on_pageout_heavy_runs() {
        // The MVEC effect in Figure 5: with almost no pageins, the
        // sequential disk stream (~15 ms/page) bounds write-through while
        // no-reliability streams at network speed (11.24 ms/page).
        let model = CompletionModel::paper();
        let costs = PolicyCosts {
            pageins: 10,
            pageouts: 1500,
            servers: 2,
        };
        let wt = model.run(5.0, costs, Policy::WriteThrough).etime();
        let norel = model.run(5.0, costs, Policy::NoReliability).etime();
        let ratio = (wt - 5.0) / (norel - 5.0);
        assert!(
            ratio > 1.25 && ratio < 1.5,
            "paging-time ratio {ratio} should echo the paper's ~1.3x"
        );
    }

    #[test]
    fn write_through_loses_on_fast_networks() {
        // Section 4.7's conclusion: on a high-bandwidth network the disk
        // becomes write-through's bottleneck.
        let mut model = CompletionModel::paper();
        model.hw = model.hw.scale_network(10.0);
        let costs = PolicyCosts {
            pageins: 1000,
            pageouts: 1000,
            servers: 4,
        };
        let wt = model.run(10.0, costs, Policy::WriteThrough).etime();
        let pl = model.run(10.0, costs, Policy::ParityLogging).etime();
        assert!(pl < wt, "parity logging {pl} wins at 100 Mbit/s vs {wt}");
    }

    #[test]
    fn sequential_disk_write_cost_is_near_15_ms() {
        let model = CompletionModel::paper();
        let ms = model.disk_sequential_ms();
        assert!(ms > 14.0 && ms < 16.0, "got {ms}");
    }
}
