//! Busy-server contention model (Section 4.5).
//!
//! The paper ran the remote memory servers on workstations that were (a)
//! running an X session with an actively-used editor, and (b) running a
//! CPU-bound `while(1)` loop — and measured application slowdowns of at
//! most 7 %, with server CPU utilization always below 15 %.
//!
//! The mechanism: servicing a page request needs well under a millisecond
//! of server CPU, and classic Unix schedulers boost I/O-blocked processes
//! on wakeup, so the server preempts the CPU hog almost immediately. The
//! model captures this with two parameters: the probability that a
//! request finds the server process descheduled, and the expected wait
//! before the scheduler runs it.

/// Contention model for a remote memory server on a non-idle host.
///
/// # Examples
///
/// ```
/// use rmp_sim::BusyServerModel;
///
/// // A CPU-bound while(1) competitor slows a paging-heavy app by
/// // a few percent — the paper measured at most 7 %.
/// let hog = BusyServerModel::cpu_bound();
/// let slowdown = hog.app_slowdown(0.5, 11.24);
/// assert!(slowdown < 1.07);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BusyServerModel {
    /// Host CPU utilization by native work, 0.0..=1.0.
    pub host_cpu_load: f64,
    /// Server CPU time to service one request, ms (protocol processing on
    /// the server side; well under the client's 1.6 ms total).
    pub service_cpu_ms: f64,
    /// Expected scheduling delay when the server must preempt a running
    /// process, ms. With wakeup priority boosts this is far below the
    /// 10 ms quantum.
    pub wakeup_delay_ms: f64,
    /// Probability that an arriving request must wait for a scheduling
    /// event at 100 % host load (interactive loads interleave idle time,
    /// so the effective probability scales with load).
    pub preemption_miss: f64,
}

impl Default for BusyServerModel {
    fn default() -> Self {
        BusyServerModel {
            host_cpu_load: 0.0,
            service_cpu_ms: 0.4,
            wakeup_delay_ms: 0.8,
            preemption_miss: 0.9,
        }
    }
}

impl BusyServerModel {
    /// A server on an idle workstation.
    pub fn idle() -> Self {
        BusyServerModel::default()
    }

    /// A server whose host runs an X session and an editor — the paper's
    /// first experiment. "A typical workstation, even when it is used, it
    /// is very lightly loaded."
    pub fn interactive() -> Self {
        BusyServerModel {
            host_cpu_load: 0.05,
            ..BusyServerModel::default()
        }
    }

    /// A server whose host runs a CPU-bound `while(1)` loop — the paper's
    /// second experiment.
    pub fn cpu_bound() -> Self {
        BusyServerModel {
            host_cpu_load: 1.0,
            ..BusyServerModel::default()
        }
    }

    /// Expected extra delay added to one request, ms.
    pub fn extra_delay_ms(&self) -> f64 {
        self.host_cpu_load * self.preemption_miss * self.wakeup_delay_ms
    }

    /// Expected service time of one request on this host, given the
    /// contention-free time `base_ms`.
    pub fn request_ms(&self, base_ms: f64) -> f64 {
        base_ms + self.extra_delay_ms()
    }

    /// Slowdown factor for an application whose contention-free run spends
    /// `paging_fraction` of its time in page transfers of `base_ms` each.
    pub fn app_slowdown(&self, paging_fraction: f64, base_ms: f64) -> f64 {
        let per_request = self.request_ms(base_ms) / base_ms;
        1.0 + paging_fraction * (per_request - 1.0)
    }

    /// Server CPU utilization induced by `requests_per_sec` page requests.
    pub fn server_cpu_utilization(&self, requests_per_sec: f64) -> f64 {
        (requests_per_sec * self.service_cpu_ms / 1000.0).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paging-heavy run: half the time in 11.24 ms page transfers.
    const PAGING_FRACTION: f64 = 0.5;
    const BASE_MS: f64 = 11.24;

    #[test]
    fn idle_host_adds_nothing() {
        let m = BusyServerModel::idle();
        assert_eq!(m.extra_delay_ms(), 0.0);
        assert_eq!(m.app_slowdown(PAGING_FRACTION, BASE_MS), 1.0);
    }

    #[test]
    fn interactive_host_is_within_a_second_equivalent() {
        // Section 4.5: completion times "within 1 sec" of idle for
        // FFT/GAUSS/MVEC — a fraction of a percent.
        let m = BusyServerModel::interactive();
        let slowdown = m.app_slowdown(PAGING_FRACTION, BASE_MS);
        assert!(slowdown < 1.01, "slowdown {slowdown}");
    }

    #[test]
    fn cpu_bound_host_stays_within_seven_percent() {
        // Section 4.5: "even then the completion times of our applications
        // were within 7 % of their completion times when the server ran on
        // an idle workstation."
        let m = BusyServerModel::cpu_bound();
        let slowdown = m.app_slowdown(PAGING_FRACTION, BASE_MS);
        assert!(
            slowdown > 1.0 && slowdown < 1.07,
            "slowdown {slowdown} should be in (1, 1.07)"
        );
    }

    #[test]
    fn server_cpu_stays_under_fifteen_percent() {
        // A client paging flat out issues at most one request per
        // 11.24 ms, i.e. ~89 requests/s.
        let m = BusyServerModel::idle();
        let util = m.server_cpu_utilization(1000.0 / BASE_MS);
        assert!(
            util < 0.15,
            "server CPU {util} must stay below the paper's 15 %"
        );
        assert!(util > 0.01, "but servicing is not free");
    }

    #[test]
    fn slowdown_scales_with_paging_fraction() {
        let m = BusyServerModel::cpu_bound();
        let light = m.app_slowdown(0.1, BASE_MS);
        let heavy = m.app_slowdown(0.9, BASE_MS);
        assert!(heavy > light);
    }
}
