//! Weekly idle-DRAM trace (Figure 1).
//!
//! The paper profiled 16 workstations (800 MB total) for one week and
//! found more than 700 MB free at night and on the weekend, dipping to —
//! but rarely below — 400 MB at working-day noon, and never below 300 MB.
//! This generator synthesizes that envelope: a diurnal usage wave on
//! business days, flat low usage on the weekend, plus deterministic
//! per-workstation noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the idle-memory trace.
#[derive(Clone, Copy, Debug)]
pub struct IdleTraceConfig {
    /// Workstations in the cluster (the paper had 16).
    pub workstations: usize,
    /// Memory per workstation, MB (the paper's cluster averaged 50 MB).
    pub mb_per_workstation: f64,
    /// Fraction of a workstation's memory the OS and resident daemons
    /// always hold.
    pub base_usage: f64,
    /// Peak extra usage at business hours, as a fraction of memory.
    pub peak_usage: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IdleTraceConfig {
    fn default() -> Self {
        IdleTraceConfig {
            workstations: 16,
            mb_per_workstation: 50.0,
            base_usage: 0.06,
            peak_usage: 0.55,
            seed: 0x1995_0202,
        }
    }
}

/// One sample of the trace.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Hours since Thursday 00:00 (the paper's week starts Thursday).
    pub hour: f64,
    /// Total free memory across the cluster, MB.
    pub free_mb: f64,
}

/// The synthetic weekly trace.
///
/// # Examples
///
/// ```
/// use rmp_sim::{IdleTrace, IdleTraceConfig};
///
/// let week = IdleTrace::generate(IdleTraceConfig::default(), 2);
/// assert!(week.min_free_mb() > 300.0); // The paper's floor.
/// assert!(week.max_free_mb() > 700.0); // Nights and the weekend.
/// ```
#[derive(Clone, Debug)]
pub struct IdleTrace {
    /// Samples in chronological order.
    pub samples: Vec<Sample>,
    /// Total cluster memory, MB.
    pub total_mb: f64,
}

/// Day names in the paper's order (the profile ran Feb 2-8, 1995,
/// Thursday through Wednesday).
pub const DAYS: [&str; 7] = [
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
    "Monday",
    "Tuesday",
    "Wednesday",
];

impl IdleTrace {
    /// Generates a week at `samples_per_hour` resolution.
    pub fn generate(config: IdleTraceConfig, samples_per_hour: usize) -> IdleTrace {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let total_mb = config.workstations as f64 * config.mb_per_workstation;
        let n = 7 * 24 * samples_per_hour;
        let mut samples = Vec::with_capacity(n);
        // Per-workstation phase offsets: people arrive at different times.
        let phases: Vec<f64> = (0..config.workstations)
            .map(|_| rng.gen_range(-1.5..1.5))
            .collect();
        for i in 0..n {
            let hour = i as f64 / samples_per_hour as f64;
            let day = (hour / 24.0) as usize; // 0 = Thursday.
            let hour_of_day = hour % 24.0;
            // Saturday (2) and Sunday (3) in the paper's ordering.
            let weekend = day == 2 || day == 3;
            let mut used = 0.0;
            for phase in &phases {
                let mut u = config.base_usage;
                if !weekend {
                    // Two-lobed business-day curve peaking at noon and
                    // mid-afternoon (the paper: "usage was at each peak
                    // ... at noon and afternoon of working days").
                    let t = hour_of_day + phase;
                    let lobe = |center: f64, width: f64| {
                        let d = (t - center) / width;
                        (-d * d).exp()
                    };
                    u += config.peak_usage * (lobe(12.0, 2.5).max(0.75 * lobe(16.0, 2.0)));
                } else {
                    // Weekend: a few simulations keep running.
                    u += config.peak_usage * 0.06;
                }
                // Noise: long-running jobs come and go.
                u += rng.gen_range(-0.02..0.05);
                used += u.clamp(0.0, 0.95) * config.mb_per_workstation;
            }
            samples.push(Sample {
                hour,
                free_mb: (total_mb - used).max(0.0),
            });
        }
        IdleTrace { samples, total_mb }
    }

    /// Minimum free memory over the week, MB.
    pub fn min_free_mb(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.free_mb)
            .fold(f64::MAX, f64::min)
    }

    /// Maximum free memory over the week, MB.
    pub fn max_free_mb(&self) -> f64 {
        self.samples.iter().map(|s| s.free_mb).fold(0.0, f64::max)
    }

    /// Mean free memory, MB.
    pub fn mean_free_mb(&self) -> f64 {
        self.samples.iter().map(|s| s.free_mb).sum::<f64>() / self.samples.len() as f64
    }

    /// Fraction of samples with at least `mb` free.
    pub fn fraction_at_least(&self, mb: f64) -> f64 {
        self.samples.iter().filter(|s| s.free_mb >= mb).count() as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn week() -> IdleTrace {
        IdleTrace::generate(IdleTraceConfig::default(), 4)
    }

    #[test]
    fn reproduces_figure_1_envelope() {
        let t = week();
        assert!((t.total_mb - 800.0).abs() < 1e-9);
        // "In all times though, more than 300 Mbytes of main memory were
        // unused."
        assert!(t.min_free_mb() > 300.0, "min {}", t.min_free_mb());
        // "for significant periods of time more than 700 Mbytes are
        // unused, especially during the nights, and the weekend."
        assert!(t.max_free_mb() > 700.0, "max {}", t.max_free_mb());
        assert!(
            t.fraction_at_least(700.0) > 0.3,
            "nights + weekend exceed 700 MB: {}",
            t.fraction_at_least(700.0)
        );
        // Business-hour dips below 500 MB happen but are a minority.
        let dips = 1.0 - t.fraction_at_least(500.0);
        assert!(dips > 0.03 && dips < 0.4, "dips fraction {dips}");
    }

    #[test]
    fn weekend_is_idler_than_weekdays() {
        let t = week();
        let mean_on = |day: usize| {
            let lo = day as f64 * 24.0;
            let hi = lo + 24.0;
            let vals: Vec<f64> = t
                .samples
                .iter()
                .filter(|s| s.hour >= lo && s.hour < hi)
                .map(|s| s.free_mb)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let saturday = mean_on(2);
        let monday = mean_on(4);
        assert!(
            saturday > monday + 50.0,
            "saturday {saturday} vs monday {monday}"
        );
    }

    #[test]
    fn deterministic_under_a_seed() {
        let a = week();
        let b = week();
        assert_eq!(a.samples.len(), b.samples.len());
        assert!(a
            .samples
            .iter()
            .zip(&b.samples)
            .all(|(x, y)| x.free_mb == y.free_mb));
    }
}
