//! Discrete-event simulation of the whole paging pipeline.
//!
//! The analytic model in [`crate::model`] multiplies counts by constants;
//! this simulator instead *executes* a request stream against queueing
//! resources — the shared Ethernet link (with competing background
//! traffic), the swap disk arm, and the client's protocol processing —
//! using the event core in [`crate::des`]. The two agree on an unloaded
//! network (a property test pins this) and diverge exactly where queueing
//! matters: background traffic, write-through's parallel disk stream, and
//! bursts.
//!
//! The client is synchronous, like the paper's pager: the kernel blocks
//! on each pagein, and the paging daemon issues one request at a time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmp_types::{Hw1996, Policy};

use crate::des::FifoResource;

/// One step of a client's execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PipeOp {
    /// Compute for the given milliseconds.
    Compute(f64),
    /// Evict a dirty page.
    PageOut,
    /// Fault a page in.
    PageIn,
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Hardware constants.
    pub hw: Hw1996,
    /// Reliability policy to simulate.
    pub policy: Policy,
    /// Data servers (`S`).
    pub servers: usize,
    /// Background offered load on the link, as a fraction of its
    /// bandwidth (competing stations' traffic, §4.6).
    pub background_load: f64,
    /// RNG seed for the background arrival process.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            hw: Hw1996::default(),
            policy: Policy::ParityLogging,
            servers: 4,
            background_load: 0.0,
            seed: 7,
        }
    }
}

/// Simulation outcome.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineResult {
    /// Total elapsed time, ms.
    pub elapsed_ms: f64,
    /// Time spent computing, ms.
    pub compute_ms: f64,
    /// Time the client was blocked on network transfers, ms.
    pub net_wait_ms: f64,
    /// Time the client was blocked on the disk, ms.
    pub disk_wait_ms: f64,
    /// Page transfers performed on the link.
    pub transfers: u64,
    /// Link busy fraction over the run (client plus background).
    pub link_utilization: f64,
}

/// Background-frame length: a maximum-size Ethernet frame.
fn background_frame_ms(hw: &Hw1996) -> f64 {
    1518.0 * 8.0 / hw.network_bps * 1000.0
}

/// The pipeline simulator.
///
/// # Examples
///
/// ```
/// use rmp_sim::{ops_from_counts, PipelineConfig, PipelineSim};
///
/// let ops = ops_from_counts(1000, 1000, 10_000.0);
/// let sim = PipelineSim::new(PipelineConfig::default());
/// let result = sim.run(&ops);
/// // 2000 transfers for pageins+pageouts plus 250 parity transfers.
/// assert_eq!(result.transfers, 2250);
/// assert!(result.elapsed_ms > 10_000.0);
/// ```
pub struct PipelineSim {
    config: PipelineConfig,
}

impl PipelineSim {
    /// Creates a simulator.
    pub fn new(config: PipelineConfig) -> Self {
        PipelineSim { config }
    }

    /// Executes `ops` and returns the timing outcome.
    pub fn run(&self, ops: &[PipeOp]) -> PipelineResult {
        let hw = &self.config.hw;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut link = FifoResource::new();
        let mut disk = FifoResource::new();
        let mut result = PipelineResult::default();
        let mut now: f64 = 0.0;
        let mut pageouts_seen: u64 = 0;

        // Background traffic: Poisson arrivals of frame-sized jobs.
        let frame_ms = background_frame_ms(hw);
        let bg_rate = self.config.background_load / frame_ms; // arrivals per ms
        let mut bg_next = if bg_rate > 0.0 {
            sample_exp(&mut rng, bg_rate)
        } else {
            f64::INFINITY
        };
        let mut inject_background = |link: &mut FifoResource, upto: f64, rng: &mut StdRng| {
            while bg_next < upto {
                link.serve(bg_next, frame_ms);
                bg_next += sample_exp(rng, bg_rate);
            }
        };

        // One synchronous page transfer: protocol processing on the
        // client, then the wire (shared with background traffic).
        let transfer =
            |now: f64,
             link: &mut FifoResource,
             rng: &mut StdRng,
             inject: &mut dyn FnMut(&mut FifoResource, f64, &mut StdRng)| {
                inject(link, now, rng);
                let wire_done = link.serve(now, hw.wire_ms_per_page);
                wire_done + hw.pptime_ms
            };

        for &op in ops {
            match op {
                PipeOp::Compute(ms) => {
                    result.compute_ms += ms;
                    now += ms;
                }
                PipeOp::PageIn => {
                    let start = now;
                    now = match self.config.policy {
                        Policy::DiskOnly => {
                            let done = disk.serve(now, hw.disk_ms_per_page);
                            result.disk_wait_ms += done - start;
                            done
                        }
                        _ => {
                            let done = transfer(now, &mut link, &mut rng, &mut inject_background);
                            result.transfers += 1;
                            result.net_wait_ms += done - start;
                            done
                        }
                    };
                }
                PipeOp::PageOut => {
                    pageouts_seen += 1;
                    let start = now;
                    now = match self.config.policy {
                        Policy::DiskOnly => {
                            let done = disk.serve(now, hw.disk_ms_per_page);
                            result.disk_wait_ms += done - start;
                            done
                        }
                        Policy::NoReliability => {
                            let done = transfer(now, &mut link, &mut rng, &mut inject_background);
                            result.transfers += 1;
                            result.net_wait_ms += done - start;
                            done
                        }
                        Policy::Mirroring | Policy::BasicParity => {
                            // Two page transfers, serialized on the one
                            // shared link (primary+mirror, or page+delta).
                            let mid = transfer(now, &mut link, &mut rng, &mut inject_background);
                            let done = transfer(mid, &mut link, &mut rng, &mut inject_background);
                            result.transfers += 2;
                            result.net_wait_ms += done - start;
                            done
                        }
                        Policy::ParityLogging => {
                            let mut done =
                                transfer(now, &mut link, &mut rng, &mut inject_background);
                            result.transfers += 1;
                            if pageouts_seen.is_multiple_of(self.config.servers as u64) {
                                // Group sealed: ship the parity buffer.
                                done = transfer(done, &mut link, &mut rng, &mut inject_background);
                                result.transfers += 1;
                            }
                            result.net_wait_ms += done - start;
                            done
                        }
                        Policy::ErasureCoded => {
                            // k + 1 split-sized messages serialized on the
                            // link (the simulator's `servers` knob plays
                            // `k` with the single-parity r = 1 default):
                            // each pays the full per-message protocol time
                            // but only 1/k of a page of wire time.
                            let k = self.config.servers.max(1);
                            let split_wire = hw.wire_ms_per_page / k as f64;
                            let mut done = now;
                            for _ in 0..k + 1 {
                                inject_background(&mut link, done, &mut rng);
                                let wire_done = link.serve(done, split_wire);
                                done = wire_done + hw.pptime_ms;
                                result.transfers += 1;
                            }
                            result.net_wait_ms += done - start;
                            done
                        }
                        Policy::WriteThrough => {
                            // The network copy and the disk write proceed
                            // in parallel; the client resumes at the later
                            // completion. Sequential writes pay rotation
                            // plus transfer on the disk.
                            let net_done =
                                transfer(now, &mut link, &mut rng, &mut inject_background);
                            let disk_done = disk
                                .serve(now, hw.disk_avg_rotation_ms + hw.raw_disk_transfer_ms());
                            result.transfers += 1;
                            let done = net_done.max(disk_done);
                            result.net_wait_ms += net_done - start;
                            result.disk_wait_ms += (disk_done - net_done).max(0.0);
                            done
                        }
                    };
                }
            }
        }
        result.elapsed_ms = now;
        result.link_utilization = if now > 0.0 { link.busy_ms() / now } else { 0.0 };
        result
    }
}

fn sample_exp(rng: &mut StdRng, rate_per_ms: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -u.ln() / rate_per_ms
}

/// Builds a canonical op stream from fault counts: pageins and pageouts
/// interleaved evenly with the compute time spread between them — the
/// same inputs the analytic model takes, so the two can be compared.
pub fn ops_from_counts(pageins: u64, pageouts: u64, compute_ms_total: f64) -> Vec<PipeOp> {
    let events = pageins + pageouts;
    if events == 0 {
        return vec![PipeOp::Compute(compute_ms_total)];
    }
    let gap = compute_ms_total / events as f64;
    let mut ops = Vec::with_capacity(events as usize * 2);
    // Interleave proportionally (Bresenham-style).
    let (mut ins, mut outs) = (0u64, 0u64);
    for i in 0..events {
        ops.push(PipeOp::Compute(gap));
        // Choose whichever stream is furthest behind its share.
        let in_due = (i + 1) * pageins / events;
        if ins < in_due {
            ops.push(PipeOp::PageIn);
            ins += 1;
        } else {
            ops.push(PipeOp::PageOut);
            outs += 1;
        }
    }
    debug_assert_eq!(ins + outs, events);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CompletionModel, PolicyCosts};

    fn counts() -> (u64, u64, f64) {
        (1000, 1000, 10_000.0)
    }

    #[test]
    fn unloaded_des_matches_analytic_model() {
        let (pi, po, compute) = counts();
        let ops = ops_from_counts(pi, po, compute);
        for policy in [
            Policy::NoReliability,
            Policy::Mirroring,
            Policy::ParityLogging,
            Policy::DiskOnly,
        ] {
            let sim = PipelineSim::new(PipelineConfig {
                policy,
                ..PipelineConfig::default()
            });
            let des = sim.run(&ops);
            let analytic = CompletionModel::paper()
                .run(
                    compute / 1000.0,
                    PolicyCosts {
                        pageins: pi,
                        pageouts: po,
                        servers: 4,
                    },
                    policy,
                )
                .etime()
                * 1000.0;
            let ratio = des.elapsed_ms / analytic;
            assert!(
                (0.98..1.02).contains(&ratio),
                "{policy}: DES {} vs analytic {analytic} (ratio {ratio})",
                des.elapsed_ms
            );
        }
    }

    #[test]
    fn background_load_slows_paging_monotonically() {
        let (pi, po, compute) = counts();
        let ops = ops_from_counts(pi, po, compute);
        let mut prev = 0.0;
        for load in [0.0, 0.2, 0.4, 0.6] {
            let sim = PipelineSim::new(PipelineConfig {
                background_load: load,
                ..PipelineConfig::default()
            });
            let r = sim.run(&ops);
            assert!(
                r.elapsed_ms > prev,
                "load {load}: {} not above {prev}",
                r.elapsed_ms
            );
            prev = r.elapsed_ms;
        }
    }

    #[test]
    fn mirroring_doubles_network_wait() {
        let ops = ops_from_counts(0, 1000, 1000.0);
        let run = |policy| {
            PipelineSim::new(PipelineConfig {
                policy,
                ..PipelineConfig::default()
            })
            .run(&ops)
        };
        let norel = run(Policy::NoReliability);
        let mirror = run(Policy::Mirroring);
        let ratio = mirror.net_wait_ms / norel.net_wait_ms;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn write_through_disk_bottleneck_appears_on_fast_networks() {
        let ops = ops_from_counts(100, 2000, 1000.0);
        let run = |factor: f64, policy| {
            let mut config = PipelineConfig {
                policy,
                ..PipelineConfig::default()
            };
            config.hw = config.hw.scale_network(factor);
            PipelineSim::new(config).run(&ops)
        };
        // At 1x write-through and parity logging are close; at 10x the
        // disk caps write-through while parity logging keeps scaling.
        let wt_fast = run(10.0, Policy::WriteThrough);
        let pl_fast = run(10.0, Policy::ParityLogging);
        assert!(
            wt_fast.elapsed_ms > pl_fast.elapsed_ms * 1.5,
            "wt {} vs pl {}",
            wt_fast.elapsed_ms,
            pl_fast.elapsed_ms
        );
        assert!(wt_fast.disk_wait_ms > 0.0, "the disk became the bottleneck");
    }

    #[test]
    fn deterministic_under_a_seed() {
        let ops = ops_from_counts(500, 500, 5000.0);
        let run = || {
            PipelineSim::new(PipelineConfig {
                background_load: 0.5,
                ..PipelineConfig::default()
            })
            .run(&ops)
        };
        let a = run();
        let b = run();
        assert_eq!(a.elapsed_ms, b.elapsed_ms);
        assert_eq!(a.transfers, b.transfers);
    }

    #[test]
    fn ops_from_counts_interleaves_proportionally() {
        let ops = ops_from_counts(2, 6, 80.0);
        let ins = ops.iter().filter(|o| **o == PipeOp::PageIn).count();
        let outs = ops.iter().filter(|o| **o == PipeOp::PageOut).count();
        assert_eq!(ins, 2);
        assert_eq!(outs, 6);
        let compute: f64 = ops
            .iter()
            .map(|o| match o {
                PipeOp::Compute(ms) => *ms,
                _ => 0.0,
            })
            .sum();
        assert!((compute - 80.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_pure_compute() {
        let ops = ops_from_counts(0, 0, 123.0);
        let r = PipelineSim::new(PipelineConfig::default()).run(&ops);
        assert_eq!(r.elapsed_ms, 123.0);
        assert_eq!(r.transfers, 0);
        assert_eq!(r.net_wait_ms, 0.0);
    }
}
