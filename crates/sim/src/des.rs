//! A small discrete-event simulation core.
//!
//! The pipeline simulator in [`crate::pipeline`] is built on this queue:
//! events carry an opaque payload, time is `f64` milliseconds, and ties
//! break by insertion order so runs are deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in milliseconds.
pub type SimTime = f64;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An event queue ordered by time, FIFO among equal times.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics when `at` lies in the past or is not finite — scheduling
    /// into the past silently corrupts causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at.is_finite(), "event time must be finite");
        assert!(at + 1e-9 >= self.now, "cannot schedule into the past");
        self.seq += 1;
        self.heap.push(Scheduled {
            time: at.max(self.now),
            seq: self.seq,
            event,
        });
    }

    /// Schedules `event` `delay` milliseconds from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        let now = self.now;
        self.schedule_at(now + delay.max(0.0), event);
    }

    /// Pops the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// A single-server FIFO resource: callers ask "when can a job of length
/// `service` ms that arrives at `at` finish?", and the resource tracks its
/// own busy horizon. This models the Ethernet link, a server CPU, or the
/// disk arm.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoResource {
    busy_until: SimTime,
    busy_ms: f64,
    jobs: u64,
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        FifoResource::default()
    }

    /// Serves a job arriving at `at` needing `service` ms; returns the
    /// completion time (after any queueing behind earlier jobs).
    pub fn serve(&mut self, at: SimTime, service: f64) -> SimTime {
        let start = self.busy_until.max(at);
        self.busy_until = start + service;
        self.busy_ms += service;
        self.jobs += 1;
        self.busy_until
    }

    /// Time the resource has spent serving, ms.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// The time at which the resource next goes idle.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(3.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule_at(2.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(10.0, ());
        assert_eq!(q.now(), 0.0);
        let (t, _) = q.pop().expect("event");
        assert_eq!(t, 10.0);
        assert_eq!(q.now(), 10.0);
        q.schedule_in(5.0, ());
        let (t, _) = q.pop().expect("event");
        assert_eq!(t, 15.0);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, ());
        q.pop();
        q.schedule_at(5.0, ());
    }

    #[test]
    fn fifo_resource_queues_jobs() {
        let mut r = FifoResource::new();
        assert_eq!(r.serve(0.0, 10.0), 10.0);
        // Arrives while busy: queues behind.
        assert_eq!(r.serve(3.0, 10.0), 20.0);
        // Arrives after idle: starts immediately.
        assert_eq!(r.serve(30.0, 5.0), 35.0);
        assert_eq!(r.busy_ms(), 25.0);
        assert_eq!(r.jobs(), 3);
    }
}
