//! Slotted CSMA/CD Ethernet simulator (Section 4.6).
//!
//! The paper repeated its experiments over a loaded Ethernet and observed
//! degradation "even when the Ethernet was lightly loaded ... Adding more
//! sources of traffic leads to an enormous demand for bandwidth causing
//! repeated collisions and lowering the effective bandwidth of the
//! network, leading to throughput collapse. ... this inefficiency is not
//! inherent to remote memory paging but rather to the CSMA/CD protocol
//! employed by the Ethernet."
//!
//! The model: time advances in 51.2 us slots; each backlogged station
//! whose backoff expired transmits in an idle slot with persistence
//! probability `p` (p-persistent CSMA); a sole transmitter holds the wire
//! for a frame time, two or more collide and draw a binary-exponential
//! backoff. An 8 KB page crosses the wire as six maximum-size Ethernet
//! frames, so page traffic is a stream of 1518-byte frames.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ethernet slot time, microseconds (the 10 Mbit/s standard).
pub const SLOT_US: f64 = 51.2;

/// Configuration of the CSMA/CD simulation.
#[derive(Clone, Copy, Debug)]
pub struct EthernetConfig {
    /// Number of stations contending for the wire.
    pub stations: usize,
    /// Frame size in bits (default: a maximum-size 1518-byte frame).
    pub frame_bits: f64,
    /// Raw bandwidth, bits per second.
    pub bandwidth_bps: f64,
    /// Transmission persistence in an idle slot.
    pub persistence: f64,
    /// Maximum backoff exponent (standard Ethernet truncates at 10).
    pub max_backoff_exp: u32,
    /// Per-station queue bound, frames (paging clients block rather than
    /// queue unboundedly).
    pub queue_limit: u64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for EthernetConfig {
    fn default() -> Self {
        EthernetConfig {
            stations: 8,
            frame_bits: 1518.0 * 8.0,
            bandwidth_bps: 10.0e6,
            persistence: 0.5,
            max_backoff_exp: 10,
            queue_limit: 64,
            seed: 0x45746865,
        }
    }
}

/// One measured point of an offered-load sweep.
#[derive(Clone, Copy, Debug)]
pub struct LoadPoint {
    /// Offered load as a fraction of raw bandwidth.
    pub offered: f64,
    /// Goodput achieved as a fraction of raw bandwidth.
    pub goodput: f64,
    /// Collision events per delivered frame.
    pub collisions_per_frame: f64,
    /// Mean head-of-line delay per delivered frame, ms.
    pub mean_delay_ms: f64,
    /// Frames dropped at full queues, per delivered frame.
    pub loss_per_frame: f64,
}

/// The paging client's experience under background traffic.
#[derive(Clone, Copy, Debug)]
pub struct PagingPoint {
    /// Background offered load (fraction of raw bandwidth).
    pub background: f64,
    /// Fraction of the paging client's demand that was delivered.
    pub delivered_fraction: f64,
    /// Mean delay of the paging client's frames, ms.
    pub mean_delay_ms: f64,
}

struct Station {
    backlog: u64,
    backoff: u64,
    attempts: u32,
    acc: f64,
    rate: f64,
    head_arrival: f64,
    delivered: u64,
    dropped: u64,
    delay_slots: f64,
}

impl Station {
    fn new(rate: f64) -> Self {
        Station {
            backlog: 0,
            backoff: 0,
            attempts: 0,
            acc: 0.0,
            rate,
            head_arrival: 0.0,
            delivered: 0,
            dropped: 0,
            delay_slots: 0.0,
        }
    }
}

/// The CSMA/CD simulator.
///
/// # Examples
///
/// ```
/// use rmp_sim::{CsmaCd, EthernetConfig};
///
/// let mut sim = CsmaCd::new(EthernetConfig::default());
/// let light = sim.run(0.2, 100_000);
/// assert!((light.goodput - 0.2).abs() < 0.05, "light load delivered");
/// ```
pub struct CsmaCd {
    config: EthernetConfig,
    rng: StdRng,
    last_collisions: u64,
}

impl CsmaCd {
    /// Creates a simulator.
    pub fn new(config: EthernetConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        CsmaCd {
            config,
            rng,
            last_collisions: 0,
        }
    }

    /// Slots needed to transmit one frame.
    pub fn frame_slots(&self) -> u64 {
        (self.config.frame_bits / self.config.bandwidth_bps * 1e6 / SLOT_US).ceil() as u64
    }

    fn simulate(&mut self, rates: &[f64], slots: u64) -> Vec<Station> {
        let frame_slots = self.frame_slots();
        let mut stations: Vec<Station> = rates
            .iter()
            .map(|&r| {
                let mut st = Station::new(r);
                // Random arrival phase: real stations are not synchronized.
                st.acc = self.rng.gen_range(0.0..1.0);
                st
            })
            .collect();
        let mut busy_until: u64 = 0;
        let mut collisions_total = 0u64;
        for slot in 0..slots {
            for st in stations.iter_mut() {
                st.acc += st.rate;
                while st.acc >= 1.0 {
                    st.acc -= 1.0;
                    if st.backlog == 0 {
                        st.head_arrival = slot as f64;
                    }
                    if st.backlog < self.config.queue_limit {
                        st.backlog += 1;
                    } else {
                        st.dropped += 1;
                    }
                }
            }
            if slot < busy_until {
                continue;
            }
            let mut contenders: Vec<usize> = Vec::new();
            for (i, st) in stations.iter_mut().enumerate() {
                if st.backlog > 0 {
                    if st.backoff > 0 {
                        st.backoff -= 1;
                    } else if self.rng.gen_bool(self.config.persistence) {
                        contenders.push(i);
                    }
                }
            }
            match contenders.len() {
                0 => {}
                1 => {
                    let st = &mut stations[contenders[0]];
                    st.backlog -= 1;
                    st.attempts = 0;
                    st.delivered += 1;
                    st.delay_slots += slot as f64 - st.head_arrival + frame_slots as f64;
                    st.head_arrival = (slot + frame_slots) as f64;
                    busy_until = slot + frame_slots;
                }
                k => {
                    collisions_total += k as u64;
                    for &i in &contenders {
                        let st = &mut stations[i];
                        st.attempts = (st.attempts + 1).min(self.config.max_backoff_exp);
                        let window = 1u64 << st.attempts;
                        st.backoff = self.rng.gen_range(0..window);
                    }
                    busy_until = slot + 1;
                }
            }
        }
        self.last_collisions = collisions_total;
        stations
    }

    /// Simulates a symmetric offered load across all stations.
    pub fn run(&mut self, offered: f64, slots: u64) -> LoadPoint {
        let frame_slots = self.frame_slots() as f64;
        let n = self.config.stations;
        let per_station = offered / frame_slots / n as f64;
        let stations = self.simulate(&vec![per_station; n], slots);
        let delivered: u64 = stations.iter().map(|s| s.delivered).sum();
        let dropped: u64 = stations.iter().map(|s| s.dropped).sum();
        let delay: f64 = stations.iter().map(|s| s.delay_slots).sum();
        LoadPoint {
            offered,
            goodput: delivered as f64 * frame_slots / slots as f64,
            collisions_per_frame: self.last_collisions as f64 / delivered.max(1) as f64,
            mean_delay_ms: delay / delivered.max(1) as f64 * SLOT_US / 1000.0,
            loss_per_frame: dropped as f64 / delivered.max(1) as f64,
        }
    }

    /// A paging client offering `paging` load while the other stations
    /// offer `background` in total — the Section 4.6 experiment.
    pub fn paging_under_background(
        &mut self,
        paging: f64,
        background: f64,
        slots: u64,
    ) -> PagingPoint {
        let frame_slots = self.frame_slots() as f64;
        let n = self.config.stations;
        assert!(n >= 2, "need the paging station plus background stations");
        let mut rates = vec![background / frame_slots / (n - 1) as f64; n];
        rates[0] = paging / frame_slots;
        let stations = self.simulate(&rates, slots);
        let pager = &stations[0];
        let demanded = paging / frame_slots * slots as f64;
        PagingPoint {
            background,
            delivered_fraction: (pager.delivered as f64 / demanded).min(1.0),
            mean_delay_ms: pager.delay_slots / pager.delivered.max(1) as f64 * SLOT_US / 1000.0,
        }
    }

    /// Sweeps offered load over `points` values in `(0, max_offered]`.
    pub fn sweep(&mut self, max_offered: f64, points: usize, slots: u64) -> Vec<LoadPoint> {
        (1..=points)
            .map(|i| self.run(max_offered * i as f64 / points as f64, slots))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> CsmaCd {
        CsmaCd::new(EthernetConfig::default())
    }

    #[test]
    fn light_load_is_delivered_in_full() {
        let p = sim().run(0.2, 400_000);
        assert!(
            (p.goodput - 0.2).abs() < 0.02,
            "light load delivered: {p:?}"
        );
        assert!(p.loss_per_frame < 0.01, "no loss at light load: {p:?}");
    }

    #[test]
    fn goodput_saturates_below_raw_bandwidth() {
        let p = sim().run(2.0, 400_000);
        assert!(p.goodput < 0.95, "contention overhead is real: {p:?}");
        assert!(p.goodput > 0.3, "but the wire still does work: {p:?}");
    }

    #[test]
    fn overload_explodes_collisions_and_delay() {
        let mut s = sim();
        let light = s.run(0.2, 400_000);
        let heavy = s.run(2.0, 400_000);
        assert!(
            heavy.collisions_per_frame > light.collisions_per_frame * 2.0,
            "collisions rise: {light:?} vs {heavy:?}"
        );
        assert!(
            heavy.mean_delay_ms > light.mean_delay_ms * 5.0,
            "delay explodes: {light:?} vs {heavy:?}"
        );
        assert!(heavy.loss_per_frame > 0.1, "queues overflow: {heavy:?}");
    }

    #[test]
    fn background_traffic_starves_the_paging_client() {
        // Section 4.6: performance degrades even when the Ethernet is
        // lightly loaded, and collapses as traffic grows.
        let mut s = sim();
        // A paging client at full tilt wants ~0.9 of the wire.
        let idle = s.paging_under_background(0.9, 0.0, 400_000);
        let light = s.paging_under_background(0.9, 0.3, 400_000);
        let heavy = s.paging_under_background(0.9, 1.5, 400_000);
        assert!(idle.delivered_fraction > 0.9, "{idle:?}");
        assert!(
            light.delivered_fraction < idle.delivered_fraction,
            "even light background hurts: {light:?}"
        );
        assert!(
            heavy.delivered_fraction < 0.6,
            "heavy background collapses paging: {heavy:?}"
        );
        assert!(heavy.mean_delay_ms > idle.mean_delay_ms);
    }

    #[test]
    fn sweep_produces_requested_points() {
        let mut s = sim();
        let points = s.sweep(1.0, 5, 100_000);
        assert_eq!(points.len(), 5);
        assert!(points[4].goodput >= points[0].goodput * 0.8);
    }

    #[test]
    fn deterministic_under_a_seed() {
        let a = sim().run(0.8, 100_000);
        let b = sim().run(0.8, 100_000);
        assert_eq!(a.goodput, b.goodput);
        assert_eq!(a.collisions_per_frame, b.collisions_per_frame);
    }
}
