//! Weekly capacity simulation: a paging client against the idle-DRAM tide.
//!
//! Figure 1 shows how much memory the cluster donates over a week;
//! Section 2.1 describes what the client does when that shrinks (migrate,
//! spill to disk) and grows again (re-replicate). This module walks a
//! client's steady memory demand across the weekly trace and reports how
//! often each policy fit entirely in remote memory, how much spilled to
//! the local disk, and how much migration traffic the tide caused.

use rmp_types::Policy;

use crate::idle::IdleTrace;

/// Outcome of one simulated week.
#[derive(Clone, Copy, Debug, Default)]
pub struct CapacityReport {
    /// Fraction of the week served entirely from remote memory.
    pub fully_remote_fraction: f64,
    /// Fraction of the week with at least one page on the local disk.
    pub degraded_fraction: f64,
    /// Peak data spilled to the local disk, MB.
    pub peak_spill_mb: f64,
    /// Total page migration volume over the week, MB (pages moved to the
    /// disk when the tide went out plus pages promoted back).
    pub migration_mb: f64,
    /// Minimum remote headroom over the week, MB (negative means the
    /// demand outgrew the cluster).
    pub min_headroom_mb: f64,
}

/// Simulates a client demanding `demand_mb` of swap under `policy` with
/// `servers` data servers and the given parity-logging `overflow`
/// fraction, against the donated-memory trace.
///
/// Each sample compares the policy's *gross* requirement
/// (`demand x memory_overhead`) against the cluster's free memory; the
/// shortfall lives on the local disk, and every change in the shortfall is
/// migration traffic (Section 2.1's migrate-out / re-replicate-back).
pub fn simulate_week(
    trace: &IdleTrace,
    demand_mb: f64,
    policy: Policy,
    servers: usize,
    overflow: f64,
) -> CapacityReport {
    let gross = demand_mb * policy.memory_overhead(servers, overflow);
    let mut report = CapacityReport {
        min_headroom_mb: f64::MAX,
        ..CapacityReport::default()
    };
    let mut prev_spill = 0.0f64;
    let n = trace.samples.len().max(1);
    let mut fully_remote = 0usize;
    for s in &trace.samples {
        let headroom = s.free_mb - gross;
        report.min_headroom_mb = report.min_headroom_mb.min(headroom);
        let spill = (-headroom).max(0.0).min(demand_mb);
        if spill == 0.0 {
            fully_remote += 1;
        }
        report.peak_spill_mb = report.peak_spill_mb.max(spill);
        report.migration_mb += (spill - prev_spill).abs();
        prev_spill = spill;
    }
    report.fully_remote_fraction = fully_remote as f64 / n as f64;
    report.degraded_fraction = 1.0 - report.fully_remote_fraction;
    if report.min_headroom_mb == f64::MAX {
        report.min_headroom_mb = 0.0;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idle::IdleTraceConfig;

    fn week() -> IdleTrace {
        IdleTrace::generate(IdleTraceConfig::default(), 4)
    }

    #[test]
    fn small_demand_stays_fully_remote() {
        // 100 MB of user data under parity logging needs ~140 MB gross;
        // the cluster never drops below ~340 MB free.
        let r = simulate_week(&week(), 100.0, Policy::ParityLogging, 4, 0.10);
        assert_eq!(r.fully_remote_fraction, 1.0, "{r:?}");
        assert_eq!(r.peak_spill_mb, 0.0);
        assert_eq!(r.migration_mb, 0.0);
        assert!(r.min_headroom_mb > 0.0);
    }

    #[test]
    fn business_hours_squeeze_large_demands() {
        // 250 MB under mirroring needs 500 MB gross: fine at night,
        // spills at the working-day peaks.
        let r = simulate_week(&week(), 250.0, Policy::Mirroring, 4, 0.10);
        assert!(r.fully_remote_fraction > 0.3, "nights are fine: {r:?}");
        assert!(r.degraded_fraction > 0.05, "peaks spill: {r:?}");
        assert!(r.peak_spill_mb > 0.0);
        assert!(r.migration_mb > 0.0, "the tide causes migration traffic");
    }

    #[test]
    fn parity_logging_fits_where_mirroring_spills() {
        let week = week();
        let pl = simulate_week(&week, 250.0, Policy::ParityLogging, 4, 0.10);
        let mir = simulate_week(&week, 250.0, Policy::Mirroring, 4, 0.10);
        assert!(
            pl.fully_remote_fraction > mir.fully_remote_fraction,
            "1.38x overhead fits more of the week than 2x: {pl:?} vs {mir:?}"
        );
        assert!(pl.peak_spill_mb <= mir.peak_spill_mb);
    }

    #[test]
    fn no_reliability_is_the_capacity_upper_bound() {
        let week = week();
        for demand in [150.0, 250.0, 320.0] {
            let norel = simulate_week(&week, demand, Policy::NoReliability, 4, 0.10);
            for policy in [
                Policy::ParityLogging,
                Policy::BasicParity,
                Policy::Mirroring,
            ] {
                let r = simulate_week(&week, demand, policy, 4, 0.10);
                assert!(
                    r.fully_remote_fraction <= norel.fully_remote_fraction + 1e-12,
                    "{policy} cannot fit more than no-reliability"
                );
            }
        }
    }
}
